#include "genome/quality.h"

#include <gtest/gtest.h>

#include <sstream>

#include "genome/reference.h"

namespace asmcap {
namespace {

TEST(Phred, Conversions) {
  EXPECT_NEAR(phred_to_error('!' + 10), 0.1, 1e-12);   // Q10
  EXPECT_NEAR(phred_to_error('!' + 30), 0.001, 1e-12); // Q30
  EXPECT_EQ(error_to_phred(0.1), '!' + 10);
  EXPECT_EQ(error_to_phred(0.001), '!' + 30);
  EXPECT_EQ(error_to_phred(1.0), '!');
  EXPECT_EQ(error_to_phred(0.0), '!' + 41);  // capped
  EXPECT_THROW(phred_to_error(' '), std::invalid_argument);
}

TEST(Phred, RoundTripWithinRounding) {
  for (int q = 2; q <= 40; ++q) {
    const char c = static_cast<char>('!' + q);
    EXPECT_EQ(error_to_phred(phred_to_error(c)), c);
  }
}

TEST(QualityProfile, LinearDecay) {
  const QualityProfile profile{40.0, 20.0};
  EXPECT_DOUBLE_EQ(profile.phred_at(0.0), 40.0);
  EXPECT_DOUBLE_EQ(profile.phred_at(1.0), 20.0);
  EXPECT_DOUBLE_EQ(profile.phred_at(0.5), 30.0);
  EXPECT_GT(profile.error_at(1.0), profile.error_at(0.0));
}

TEST(QualityProfile, MeanErrorMatchesNumericIntegral) {
  const QualityProfile profile{38.0, 22.0};
  double numeric = 0.0;
  const int steps = 10000;
  for (int i = 0; i < steps; ++i)
    numeric += profile.error_at((i + 0.5) / steps);
  numeric /= steps;
  EXPECT_NEAR(profile.mean_error(), numeric, numeric * 0.001);
  // Flat profile edge case.
  const QualityProfile flat{30.0, 30.0};
  EXPECT_NEAR(flat.mean_error(), 0.001, 1e-9);
}

class QualityReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1001);
    reference_ = generate_reference(10000, {}, rng);
  }
  Sequence reference_;
};

TEST_F(QualityReadTest, ShapeAndBounds) {
  Rng rng(1002);
  const QualityRead read =
      simulate_quality_read(reference_, 500, 256, {}, rng);
  EXPECT_EQ(read.read.size(), 256u);
  EXPECT_EQ(read.quality.size(), 256u);
  EXPECT_EQ(read.origin, 500u);
  EXPECT_THROW(simulate_quality_read(reference_, 9900, 256, {}, rng),
               std::out_of_range);
}

TEST_F(QualityReadTest, ErrorsClusterAtTail) {
  Rng rng(1003);
  const QualityProfile profile{40.0, 12.0};  // strong tail degradation
  std::size_t head_errors = 0;
  std::size_t tail_errors = 0;
  for (int t = 0; t < 200; ++t) {
    const QualityRead read =
        simulate_quality_read(reference_, 100, 200, profile, rng);
    for (std::size_t i = 0; i < 100; ++i)
      head_errors += read.read[i] != reference_[100 + i] ? 1u : 0u;
    for (std::size_t i = 100; i < 200; ++i)
      tail_errors += read.read[i] != reference_[100 + i] ? 1u : 0u;
  }
  EXPECT_GT(tail_errors, 4 * head_errors);
}

TEST_F(QualityReadTest, SubstitutionCounterMatches) {
  Rng rng(1004);
  const QualityRead read =
      simulate_quality_read(reference_, 0, 300, {20.0, 20.0}, rng);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < 300; ++i)
    mismatches += read.read[i] != reference_[i] ? 1u : 0u;
  EXPECT_EQ(read.substitutions, mismatches);
  EXPECT_GT(mismatches, 0u);  // Q20 over 300 bases: ~3 expected
}

TEST_F(QualityReadTest, EmpiricalRateNearProfileMean) {
  Rng rng(1005);
  const QualityProfile profile{30.0, 20.0};
  std::vector<QualityRead> reads;
  for (int t = 0; t < 300; ++t)
    reads.push_back(simulate_quality_read(reference_, 200, 256, profile, rng));
  const double rate = empirical_substitution_rate(reads, reference_, 256);
  EXPECT_NEAR(rate, profile.mean_error(), profile.mean_error() * 0.25);
  EXPECT_EQ(empirical_substitution_rate({}, reference_, 256), 0.0);
}

TEST_F(QualityReadTest, FastqRoundTrip) {
  Rng rng(1006);
  std::vector<QualityRead> reads;
  reads.push_back(simulate_quality_read(reference_, 10, 64, {}, rng));
  reads.push_back(simulate_quality_read(reference_, 99, 64, {}, rng));
  const auto records = to_fastq(reads, "q");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "q0_pos10");
  std::ostringstream out;
  write_fastq(out, records);
  std::istringstream in(out.str());
  const auto parsed = read_fastq(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1].seq, reads[1].read);
  EXPECT_EQ(parsed[1].quality, reads[1].quality);
}

}  // namespace
}  // namespace asmcap
