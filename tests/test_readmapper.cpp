#include "asmcap/readmapper.h"

#include <gtest/gtest.h>

#include "genome/readsim.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

class ReadMapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1101);
    reference_ = generate_reference(64 * 40 + 128, {}, rng);
    segments_ = segment_reference(reference_, 64);
    segments_.resize(40);
    AsmcapConfig config;
    config.array_rows = 64;
    config.array_cols = 64;
    config.array_count = 1;
    mapper_ = std::make_unique<ReadMapper>(config, segments_, 64);
    mapper_->set_error_profile(ErrorRates::condition_a());
  }
  Sequence reference_;
  std::vector<Sequence> segments_;
  std::unique_ptr<ReadMapper> mapper_;
};

TEST_F(ReadMapperTest, MapsCleanReadToOrigin) {
  const MappedRead mapped = mapper_->map(segments_[17], 2);
  ASSERT_TRUE(mapped.mapped);
  EXPECT_EQ(mapped.segment, 17u);
  EXPECT_EQ(mapped.reference_pos, 17u * 64);
  EXPECT_EQ(mapped.edit_distance, 0u);
  EXPECT_EQ(mapped.alignment.to_string(), "64=");
}

TEST_F(ReadMapperTest, RecoversAlignmentOfNoisyRead) {
  Rng rng(1102);
  Sequence read = segments_[5];
  read.set(10, substitute_base(read[10], 1.0 / 3.0, rng));
  read.set(40, substitute_base(read[40], 1.0 / 3.0, rng));
  const MappedRead mapped = mapper_->map(read, 4);
  ASSERT_TRUE(mapped.mapped);
  EXPECT_EQ(mapped.segment, 5u);
  EXPECT_EQ(mapped.edit_distance, 2u);
  EXPECT_TRUE(cigar_consistent(mapped.alignment, segments_[5], read));
}

TEST_F(ReadMapperTest, ForeignReadUnmapped) {
  Rng rng(1103);
  const MappedRead mapped = mapper_->map(Sequence::random(64, rng), 4);
  EXPECT_FALSE(mapped.mapped);
  EXPECT_EQ(mapped.candidates, 0u);
}

TEST_F(ReadMapperTest, HostVerificationKillsFalsePositives) {
  // Even if the accelerator (with noise or ED* hiding) reports spurious
  // rows, the mapper's exact verification must never return a row whose
  // true ED exceeds the threshold.
  Rng rng(1104);
  for (int t = 0; t < 20; ++t) {
    Sequence read = segments_[static_cast<std::size_t>(rng.below(40))];
    for (int e = 0; e < 5; ++e)
      read.set(rng.below(64), substitute_base(read[0], 1.0 / 3.0, rng));
    const std::size_t threshold = 3;
    const MappedRead mapped = mapper_->map(read, threshold);
    if (mapped.mapped) {
      EXPECT_LE(mapped.edit_distance, threshold);
    }
  }
}

TEST_F(ReadMapperTest, BatchStatsAggregate) {
  Rng rng(1105);
  ReadSimConfig sim_config;
  sim_config.read_length = 64;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator sim(reference_, sim_config);
  std::vector<Sequence> reads;
  for (int i = 0; i < 25; ++i)
    reads.push_back(sim.simulate_at(
        static_cast<std::size_t>(rng.below(40)) * 64, rng).read);
  std::vector<MappedRead> mapped;
  const MappingStats stats = mapper_->map_batch(reads, 4,
                                                StrategyMode::Full, &mapped);
  EXPECT_EQ(stats.reads, 25u);
  EXPECT_EQ(mapped.size(), 25u);
  EXPECT_GT(stats.mapping_rate(), 0.8);
  EXPECT_GT(stats.accel_latency_seconds, 0.0);
  EXPECT_GT(stats.accel_energy_joules, 0.0);
  EXPECT_GE(stats.mean_candidates(), stats.mapping_rate());
}

TEST_F(ReadMapperTest, SingleReadMappingAccumulatesStats) {
  // Regression: map() used to accumulate only host_dp_cells — reads,
  // mapped, candidates, latency, and energy were never counted for
  // single-read mapping.
  (void)mapper_->map(segments_[3], 2);
  (void)mapper_->map(segments_[7], 2);
  const MappingStats& stats = mapper_->stats();
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.mapped, 2u);
  EXPECT_GE(stats.total_candidates, 2u);
  EXPECT_GT(stats.accel_latency_seconds, 0.0);
  EXPECT_GT(stats.accel_energy_joules, 0.0);
  EXPECT_GT(stats.host_dp_cells, 0u);

  mapper_->reset_stats();
  EXPECT_EQ(mapper_->stats().reads, 0u);
  EXPECT_EQ(mapper_->stats().host_dp_cells, 0u);
}

TEST_F(ReadMapperTest, MixedSingleAndBatchUsageAccumulates) {
  // Regression: map_batch() used to wipe everything map() had recorded.
  Rng rng(1106);
  ReadSimConfig sim_config;
  sim_config.read_length = 64;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator sim(reference_, sim_config);
  std::vector<Sequence> reads;
  for (int i = 0; i < 10; ++i)
    reads.push_back(sim.simulate_at(
        static_cast<std::size_t>(rng.below(40)) * 64, rng).read);

  (void)mapper_->map(segments_[11], 2);
  const std::size_t single_cells = mapper_->stats().host_dp_cells;
  EXPECT_GT(single_cells, 0u);
  const MappingStats first_batch =
      mapper_->map_batch(reads, 4, StrategyMode::Full);
  EXPECT_EQ(first_batch.reads, 10u);  // the return value is batch-local
  EXPECT_EQ(mapper_->stats().reads, 11u);
  EXPECT_EQ(mapper_->stats().host_dp_cells,
            single_cells + first_batch.host_dp_cells);
  (void)mapper_->map(segments_[12], 2);
  const MappingStats second_batch =
      mapper_->map_batch(reads, 4, StrategyMode::Full);
  EXPECT_EQ(second_batch.reads, 10u);
  EXPECT_EQ(mapper_->stats().reads, 22u);
  EXPECT_GE(mapper_->stats().mapped, first_batch.mapped + second_batch.mapped);
}

TEST_F(ReadMapperTest, HostDpCellsChargeActualBandedWork) {
  // Regression: verification used to charge the worst-case band area
  // read.size() * (2T + 1) per candidate even when the banded routine
  // terminated early. The charge must now never exceed the worst case
  // and must reflect early exits.
  const std::size_t threshold = 4;
  const std::size_t worst_per_candidate =
      (64 + 1) * (2 * threshold + 1);  // (n+1) rows x band width
  std::vector<MappedRead> mapped;
  Rng rng(1107);
  ReadSimConfig sim_config;
  sim_config.read_length = 64;
  sim_config.rates = ErrorRates::condition_b();  // heavier edit load
  const ReadSimulator sim(reference_, sim_config);
  std::vector<Sequence> reads;
  for (int i = 0; i < 20; ++i)
    reads.push_back(sim.simulate_at(
        static_cast<std::size_t>(rng.below(40)) * 64, rng).read);
  const MappingStats stats =
      mapper_->map_batch(reads, threshold, StrategyMode::Full, &mapped);
  ASSERT_GT(stats.total_candidates, 0u);
  EXPECT_GT(stats.host_dp_cells, 0u);
  EXPECT_LE(stats.host_dp_cells,
            stats.total_candidates * worst_per_candidate);
}

TEST_F(ReadMapperTest, ConstructionValidation) {
  AsmcapConfig config;
  EXPECT_THROW(ReadMapper(config, {}, 64), std::invalid_argument);
  EXPECT_THROW(ReadMapper(config, segments_, 0), std::invalid_argument);
}

}  // namespace
}  // namespace asmcap
