#include "genome/readsim.h"

#include <gtest/gtest.h>

#include "align/edit_distance.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

class ReadSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    reference_ = generate_reference(5000, {}, rng);
  }
  Sequence reference_;
};

TEST_F(ReadSimTest, FixedLengthAfterRepadding) {
  ReadSimConfig config;
  config.read_length = 256;
  config.rates = {0.01, 0.01, 0.01};
  const ReadSimulator sim(reference_, config);
  Rng rng(12);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(sim.simulate(rng).read.size(), 256u);
}

TEST_F(ReadSimTest, ErrorFreeReadEqualsWindow) {
  ReadSimConfig config;
  config.read_length = 100;
  const ReadSimulator sim(reference_, config);
  Rng rng(13);
  const SimulatedRead read = sim.simulate_at(40, rng);
  EXPECT_EQ(read.read, reference_.subseq(40, 100));
  EXPECT_TRUE(read.edits.empty());
}

TEST_F(ReadSimTest, EditCountersMatchTrace) {
  ReadSimConfig config;
  config.read_length = 256;
  config.rates = {0.02, 0.01, 0.01};
  const ReadSimulator sim(reference_, config);
  Rng rng(14);
  for (int i = 0; i < 30; ++i) {
    const SimulatedRead read = sim.simulate(rng);
    std::size_t subs = 0;
    std::size_t ins = 0;
    std::size_t del = 0;
    for (const Edit& e : read.edits) {
      if (e.kind == EditKind::Substitution) ++subs;
      if (e.kind == EditKind::Insertion) ++ins;
      if (e.kind == EditKind::Deletion) ++del;
    }
    EXPECT_EQ(read.substitutions, subs);
    EXPECT_EQ(read.insertions, ins);
    EXPECT_EQ(read.deletions, del);
  }
}

TEST_F(ReadSimTest, EditDistanceToWindowBounded) {
  ReadSimConfig config;
  config.read_length = 128;
  config.rates = ErrorRates::condition_b();
  const ReadSimulator sim(reference_, config);
  Rng rng(15);
  for (int i = 0; i < 30; ++i) {
    const SimulatedRead read = sim.simulate(rng);
    const Sequence window = reference_.subseq(read.origin, 128);
    const std::size_t ed = edit_distance(window, read.read);
    // Repadding can add up to (deletions) extra mismatching tail bases, and
    // trimming can hide insertions; the trace still bounds ED loosely.
    EXPECT_LE(ed, read.edits.size() + read.deletions + read.insertions);
  }
}

TEST_F(ReadSimTest, OriginOutOfRangeThrows) {
  const ReadSimulator sim(reference_, {});
  Rng rng(16);
  EXPECT_THROW(sim.simulate_at(reference_.size() - 10, rng),
               std::out_of_range);
}

TEST_F(ReadSimTest, BatchCount) {
  const ReadSimulator sim(reference_, {});
  Rng rng(17);
  EXPECT_EQ(sim.simulate_batch(25, rng).size(), 25u);
}

TEST(ReadSim, RejectsTinyReference) {
  Rng rng(18);
  const Sequence tiny = Sequence::random(100, rng);
  ReadSimConfig config;
  config.read_length = 256;
  EXPECT_THROW(ReadSimulator(tiny, config), std::invalid_argument);
}

TEST(ReadSim, RejectsZeroLength) {
  Rng rng(19);
  const Sequence genome = Sequence::random(1000, rng);
  ReadSimConfig config;
  config.read_length = 0;
  EXPECT_THROW(ReadSimulator(genome, config), std::invalid_argument);
}

}  // namespace
}  // namespace asmcap
