#include "genome/reference.h"

#include <gtest/gtest.h>

namespace asmcap {
namespace {

TEST(Reference, GeneratesRequestedLength) {
  Rng rng(1);
  const Sequence genome = generate_reference(10000, {}, rng);
  EXPECT_EQ(genome.size(), 10000u);
}

TEST(Reference, GcContentTracksModel) {
  Rng rng(2);
  ReferenceModel model;
  model.gc_content = 0.41;
  model.duplication_fraction = 0.0;  // isolate composition
  const Sequence genome = generate_reference(200000, model, rng);
  const ReferenceStats stats = measure_reference(genome);
  EXPECT_NEAR(stats.gc_content, 0.41, 0.01);
}

TEST(Reference, RepeatBiasRaisesAdjacentEquality) {
  Rng rng(3);
  ReferenceModel iid;
  iid.repeat_bias = 0.0;
  iid.duplication_fraction = 0.0;
  ReferenceModel sticky = iid;
  sticky.repeat_bias = 0.3;
  const auto a = measure_reference(generate_reference(100000, iid, rng));
  const auto b = measure_reference(generate_reference(100000, sticky, rng));
  EXPECT_NEAR(a.adjacent_equal, 0.27, 0.02);  // E[p^2] over {0.295,0.295,0.205,0.205}
  EXPECT_GT(b.adjacent_equal, a.adjacent_equal + 0.15);
}

TEST(Reference, InvalidParametersThrow) {
  Rng rng(4);
  ReferenceModel bad_gc;
  bad_gc.gc_content = 1.5;
  EXPECT_THROW(generate_reference(100, bad_gc, rng), std::invalid_argument);
  ReferenceModel bad_bias;
  bad_bias.repeat_bias = 1.0;
  EXPECT_THROW(generate_reference(100, bad_bias, rng), std::invalid_argument);
}

TEST(Reference, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(generate_reference(5000, {}, a), generate_reference(5000, {}, b));
}

TEST(Reference, UniformGeneratorMatchesLength) {
  Rng rng(8);
  EXPECT_EQ(generate_uniform_reference(123, rng).size(), 123u);
}

TEST(Segment, NonOverlappingTiling) {
  Rng rng(5);
  const Sequence genome = generate_uniform_reference(1000, rng);
  const auto segments = segment_reference(genome, 256);
  ASSERT_EQ(segments.size(), 3u);  // 1000 / 256 = 3, remainder discarded
  for (const auto& s : segments) EXPECT_EQ(s.size(), 256u);
  EXPECT_EQ(segments[1].to_string(), genome.subseq(256, 256).to_string());
}

TEST(Segment, OverlappingStride) {
  Rng rng(6);
  const Sequence genome = generate_uniform_reference(600, rng);
  const auto segments = segment_reference(genome, 256, 128);
  // positions 0,128,256,384 -> windows ending at 256,384,512,640>600 -> 3
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[2].to_string(), genome.subseq(256, 256).to_string());
}

TEST(Segment, ZeroLengthThrows) {
  Rng rng(6);
  const Sequence genome = generate_uniform_reference(100, rng);
  EXPECT_THROW(segment_reference(genome, 0), std::invalid_argument);
}

TEST(Segment, TooShortReferenceYieldsNothing) {
  Rng rng(6);
  const Sequence genome = generate_uniform_reference(100, rng);
  EXPECT_TRUE(segment_reference(genome, 256).empty());
}

TEST(Reference, DuplicationCreatesSimilarWindows) {
  Rng rng(10);
  ReferenceModel model;
  model.duplication_fraction = 0.5;
  model.duplication_length = 300;
  model.duplication_divergence = 0.0;
  const Sequence genome = generate_reference(20000, model, rng);
  // With heavy exact duplication some 64-mers must recur. Count distinct
  // 64-base windows at stride 64 and expect at least one collision.
  std::size_t collisions = 0;
  const auto windows = segment_reference(genome, 64, 64);
  for (std::size_t i = 0; i < windows.size() && collisions == 0; ++i)
    for (std::size_t j = i + 1; j < windows.size(); ++j)
      if (windows[i] == windows[j]) {
        ++collisions;
        break;
      }
  EXPECT_GT(collisions, 0u);
}

TEST(Reference, MeasureEmpty) {
  const ReferenceStats stats = measure_reference(Sequence{});
  EXPECT_EQ(stats.length, 0u);
  EXPECT_EQ(stats.gc_content, 0.0);
}

}  // namespace
}  // namespace asmcap
