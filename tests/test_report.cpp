#include "eval/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace asmcap {
namespace {

Fig7Series tiny_series() {
  Fig7Series series;
  series.condition = "test condition";
  Fig7Point point;
  point.threshold = 3;
  point.edam = 0.50;
  point.asmcap_base = 0.60;
  point.asmcap_hdac = 0.65;
  point.asmcap_tasr = 0.61;
  point.asmcap_full = 0.70;
  point.kraken = 0.25;
  series.points.push_back(point);
  point.threshold = 4;
  point.asmcap_full = 0.80;
  series.points.push_back(point);
  return series;
}

TEST(Report, Fig7TablePercentages) {
  const Table table = fig7_table(tiny_series());
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 7u);
  EXPECT_EQ(table.cell(0, 0), "3");
  EXPECT_EQ(table.cell(0, 1), "50");   // 50 %
  EXPECT_EQ(table.cell(0, 5), "70");
  EXPECT_EQ(table.cell(1, 5), "80");
}

TEST(Report, Fig7NormalizedDividesByKraken) {
  const Table table = fig7_normalized_table(tiny_series());
  EXPECT_EQ(table.columns(), 4u);
  EXPECT_EQ(table.cell(0, 1), "2");    // 0.50 / 0.25
  EXPECT_EQ(table.cell(0, 3), "2.8");  // 0.70 / 0.25
}

TEST(Report, SeriesMean) {
  const Fig7Series series = tiny_series();
  EXPECT_NEAR(series.mean(&Fig7Point::asmcap_full), 0.75, 1e-12);
  EXPECT_NEAR(series.mean(&Fig7Point::edam), 0.50, 1e-12);
  Fig7Series empty;
  EXPECT_EQ(empty.mean(&Fig7Point::edam), 0.0);
}

TEST(Report, StatesTable) {
  StatesResult states;
  states.edam_states = 44;
  states.asmcap_states = 566;
  const Table table = states_table(states);
  EXPECT_EQ(table.cell(0, 1), "44");
  EXPECT_EQ(table.cell(1, 1), "566");
}

TEST(Report, BreakdownTableUnits) {
  BreakdownResult breakdown;
  breakdown.area_total = 1.58e-6;
  breakdown.area_cells_fraction = 0.992;
  breakdown.power_total = 7.67e-3;
  breakdown.power_cells_fraction = 0.75;
  breakdown.power_sr_fraction = 0.19;
  breakdown.power_sa_fraction = 0.06;
  const Table table = breakdown_table(breakdown);
  EXPECT_EQ(table.cell(0, 1), "1.58mm^2");
  EXPECT_EQ(table.cell(2, 1), "7.67mW");
}

TEST(Report, PrintWithHeading) {
  std::ostringstream out;
  print_report(out, "My Title", states_table({44, 566}));
  EXPECT_NE(out.str().find("== My Title =="), std::string::npos);
  EXPECT_NE(out.str().find("566"), std::string::npos);
}

}  // namespace
}  // namespace asmcap
