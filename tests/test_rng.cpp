#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace asmcap {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(rng.next());
  EXPECT_GT(seen.size(), 30u);  // not stuck
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsUnbiased) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c, trials / 5, trials / 50);
}

TEST(Rng, BelowThrowsOnZero) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BetweenCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenThrowsWhenInverted) {
  Rng rng(1);
  EXPECT_THROW(rng.between(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonMeanAndZero) {
  Rng rng(23);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonNegativeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(99);
  Rng p2(99);
  Rng a = p1.fork(7);
  Rng b = p2.fork(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

}  // namespace
}  // namespace asmcap
