// Property/stress suite of the service tier's scheduler: priority classes
// with weighted fair-share admission, the global in-flight budget, the
// bounded pending queue (blocking submit and fail-fast try_submit),
// cooperative cancellation and deadlines under an injectable virtual
// clock, and per-ticket latency/energy statistics.
//
// The load-bearing property, asserted throughout: NO scheduling policy —
// priorities shuffled, cancels raced mid-flight, deadlines expiring under
// load, max_in_flight < reads < threads — may change what a COMPLETED
// read computes. Every Done read's decisions, match ids, latency, and
// energy must be bit-identical to the plain FIFO search_batch path on
// every backend (noisy circuit sensing included), and the ledger must
// book exactly the Done reads — cancelled work books no phantom energy.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/clock.h"
#include "util/stats.h"

namespace asmcap {
namespace {

AsmcapConfig bank_config(std::size_t array_count, bool ideal = true) {
  AsmcapConfig config;
  config.array_rows = 16;
  config.array_cols = 64;
  config.array_count = array_count;
  config.ideal_sensing = ideal;
  return config;
}

void expect_read_equal(const QueryResult& got, const QueryResult& want,
                       std::size_t index) {
  EXPECT_EQ(got.decisions, want.decisions) << "read " << index;
  EXPECT_EQ(got.matched_segments, want.matched_segments) << "read " << index;
  EXPECT_EQ(got.energy_joules, want.energy_joules) << "read " << index;
  EXPECT_EQ(got.latency_seconds, want.latency_seconds) << "read " << index;
  EXPECT_EQ(got.plan.total_searches(), want.plan.total_searches())
      << "read " << index;
}

void expect_identical(const std::vector<QueryResult>& got,
                      const std::vector<QueryResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    expect_read_equal(got[i], want[i], i);
}

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2301);
    reference_ = generate_reference(64 * 40 + 128, {}, rng);
    segments_ = segment_reference(reference_, 64);
    segments_.resize(40);

    Rng read_rng(2302);
    ReadSimConfig sim_config;
    sim_config.read_length = 64;
    sim_config.rates = ErrorRates::condition_a();
    const ReadSimulator sim(reference_, sim_config);
    for (int i = 0; i < 24; ++i) {
      switch (i % 3) {
        case 0:
          reads_.push_back(segments_[static_cast<std::size_t>(
              read_rng.below(segments_.size()))]);
          break;
        case 1:
          reads_.push_back(
              sim.simulate_at(read_rng.below(40) * 64, read_rng).read);
          break;
        default:
          reads_.push_back(Sequence::random(64, read_rng));
      }
    }
  }

  /// A freshly loaded router (twin construction: two calls with the same
  /// arguments produce bit-identical systems — same seed, same silicon).
  std::unique_ptr<ShardedAccelerator> make_router(std::size_t shards,
                                                  bool ideal,
                                                  BackendKind backend) {
    auto router =
        std::make_unique<ShardedAccelerator>(bank_config(4, ideal), shards);
    router->load_reference(segments_);
    router->set_backend(backend);
    return router;
  }

  std::vector<Sequence> prefix(std::size_t n) const {
    return std::vector<Sequence>(reads_.begin(),
                                 reads_.begin() + static_cast<long>(n));
  }

  Sequence reference_;
  std::vector<Sequence> segments_;
  std::vector<Sequence> reads_;
};

// --------------------------------------------- FIFO bit-identity under mix

TEST_F(SchedulerTest, MixedPriorityTicketsBitIdenticalToFifoOnEveryBackend) {
  // Two concurrent tickets — a Bulk batch and an Interactive batch —
  // contending for a deliberately tight global budget must produce, read
  // for read, exactly what two sequential FIFO search_batch calls
  // produce, on the ideal circuit, the NOISY circuit, and the functional
  // backend; the ledger must agree too.
  struct Case {
    bool ideal;
    BackendKind backend;
  };
  for (const Case c : {Case{true, BackendKind::Circuit},
                       Case{false, BackendKind::Circuit},
                       Case{true, BackendKind::Functional}}) {
    auto sync = make_router(3, c.ideal, c.backend);
    auto async = make_router(3, c.ideal, c.backend);
    const std::vector<Sequence> interactive = prefix(8);
    const auto fifo_bulk =
        sync->search_batch(reads_, 4, StrategyMode::Full, 3);
    const auto fifo_interactive =
        sync->search_batch(interactive, 4, StrategyMode::Full, 3);

    SearchService::Config config;
    config.max_in_flight_reads = 3;  // force real inter-ticket contention
    SearchService service(*async, config);
    SearchService::Options bulk_options;
    bulk_options.workers = 3;
    bulk_options.service_class = ServiceClass::Bulk;
    SearchService::Options interactive_options;
    interactive_options.workers = 3;
    interactive_options.service_class = ServiceClass::Interactive;

    auto bulk = service.submit(reads_, 4, StrategyMode::Full, bulk_options);
    auto quick =
        service.submit(interactive, 4, StrategyMode::Full, interactive_options);
    bulk->wait();  // submission order — the synchronous ledger flush order
    quick->wait();

    EXPECT_EQ(bulk->state(), TicketState::Done);
    EXPECT_EQ(quick->state(), TicketState::Done);
    expect_identical(bulk->drain(), fifo_bulk);
    expect_identical(quick->drain(), fifo_interactive);

    const ExecutionTotals a = async->totals();
    const ExecutionTotals b = sync->totals();
    EXPECT_EQ(a.queries, b.queries);
    EXPECT_EQ(a.searches, b.searches);
    EXPECT_EQ(a.latency_seconds, b.latency_seconds);
    EXPECT_EQ(a.energy_joules, b.energy_joules);
  }
}

// ---------------------------------------------------- priority admission

TEST_F(SchedulerTest, InteractiveGrantsOvertakeBulkBacklog) {
  // Block the single spawned worker so both tickets are enlisted before
  // any read executes; grants then interleave purely by scheduler policy
  // (global budget 1 serialises them through retires), deterministically.
  auto async = make_router(1, true, BackendKind::Functional);
  ThreadPool& pool = async->worker_pool(2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit([opened] { opened.wait(); });

  SearchService::Config config;
  config.max_in_flight_reads = 1;
  SearchService service(*async, config);
  SearchService::Options options;
  options.workers = 2;
  options.max_in_flight = 24;
  options.service_class = ServiceClass::Bulk;
  auto bulk = service.submit(reads_, 4, StrategyMode::Full, options);
  options.service_class = ServiceClass::Interactive;
  const std::vector<Sequence> quick_reads = prefix(4);
  auto quick = service.submit(quick_reads, 4, StrategyMode::Full, options);
  gate.set_value();
  bulk->wait();
  quick->wait();

  EXPECT_EQ(bulk->state(), TicketState::Done);
  EXPECT_EQ(quick->state(), TicketState::Done);
  // No priority inversion: with weights 16:1, at most a couple of bulk
  // grants may precede the last interactive grant (the one admitted
  // before the interactive ticket arrived, plus one fair-share turn).
  std::uint64_t last_interactive = 0;
  for (const ReadTiming& t : quick->read_timings())
    last_interactive = std::max(last_interactive, t.admit_seq);
  std::size_t bulk_before = 0;
  for (const ReadTiming& t : bulk->read_timings())
    if (t.admit_seq != 0 && t.admit_seq < last_interactive) ++bulk_before;
  EXPECT_LE(bulk_before, 3u);
}

TEST_F(SchedulerTest, FairShareFollowsWeightsWithoutStarvation) {
  // Same deterministic setup, custom weights Interactive:Bulk = 3:1.
  // Grants must interleave roughly 3:1 — neither class starves — and
  // both tickets complete every read.
  auto async = make_router(1, true, BackendKind::Functional);
  ThreadPool& pool = async->worker_pool(2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit([opened] { opened.wait(); });

  SearchService::Config config;
  config.max_in_flight_reads = 1;
  config.class_weights = {3, 4, 1};
  SearchService service(*async, config);
  SearchService::Options options;
  options.workers = 2;
  options.max_in_flight = 24;
  options.service_class = ServiceClass::Bulk;
  auto bulk = service.submit(reads_, 4, StrategyMode::Full, options);
  options.service_class = ServiceClass::Interactive;
  auto quick = service.submit(reads_, 4, StrategyMode::Full, options);
  gate.set_value();
  bulk->wait();
  quick->wait();

  EXPECT_EQ(bulk->state(), TicketState::Done);   // starvation freedom
  EXPECT_EQ(quick->state(), TicketState::Done);
  std::uint64_t last_interactive = 0;
  for (const ReadTiming& t : quick->read_timings())
    last_interactive = std::max(last_interactive, t.admit_seq);
  std::size_t bulk_during = 0;
  for (const ReadTiming& t : bulk->read_timings())
    if (t.admit_seq != 0 && t.admit_seq < last_interactive) ++bulk_during;
  // 24 interactive grants at weight 3 leave room for ~8 bulk grants at
  // weight 1 in the contended stretch; allow slack on both sides.
  EXPECT_GE(bulk_during, 4u);
  EXPECT_LE(bulk_during, 14u);
}

// -------------------------------------------------- cancellation lifecycle

TEST_F(SchedulerTest, CancelThenPollLifecycleKeepsDonePrefixConsistent) {
  auto sync = make_router(3, true, BackendKind::Circuit);
  auto async = make_router(3, true, BackendKind::Circuit);
  const auto fifo = sync->search_batch(reads_, 4, StrategyMode::Full, 3);

  SearchService service(*async);
  std::promise<std::shared_ptr<SearchTicket>> handle;
  std::shared_future<std::shared_ptr<SearchTicket>> handle_future =
      handle.get_future().share();
  std::atomic<std::size_t> delivered{0};
  SearchService::Options options;
  options.workers = 3;
  options.max_in_flight = 2;
  options.on_complete = [&delivered, handle_future](std::size_t,
                                                    const QueryResult&) {
    // Cancel from inside a completion callback, mid-flight: reads beyond
    // the in-flight window at this instant must never execute.
    if (delivered.fetch_add(1) + 1 == 3) handle_future.get()->cancel();
  };
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  handle.set_value(ticket);
  ticket->wait();  // returns normally for a cancelled ticket
  ticket->cancel();  // double-call: idempotent no-op

  EXPECT_TRUE(ticket->done());
  EXPECT_EQ(ticket->state(), TicketState::Cancelled);
  EXPECT_THROW(ticket->drain(), ServiceError);

  std::size_t done = 0;
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ticket->size(); ++i) {
    switch (ticket->outcome(i)) {
      case ReadOutcome::Done:
        ++done;
        expect_read_equal(ticket->result(i), fifo[i], i);
        break;
      case ReadOutcome::Cancelled: {
        ++cancelled;
        try {
          (void)ticket->result(i);
          FAIL() << "result(" << i << ") of a cancelled read must throw";
        } catch (const ServiceError& e) {
          EXPECT_EQ(e.kind(), ServiceErrorKind::Cancelled);
        }
        break;
      }
      default:
        FAIL() << "unexpected outcome for read " << i;
    }
  }
  EXPECT_EQ(done + cancelled, ticket->size());
  EXPECT_GE(done, 3u);   // the delivered prefix survived
  EXPECT_LE(done, 10u);  // cancellation stopped the window promptly
  EXPECT_GE(cancelled, 14u);
  const TicketStats stats = ticket->stats();
  EXPECT_EQ(stats.done, done);
  EXPECT_EQ(stats.cancelled, cancelled);
}

TEST_F(SchedulerTest, CancelledWorkBooksNoPhantomEnergy) {
  // Noisy circuit sensing — the strongest case: the ledger must contain
  // EXACTLY the Done reads' energy/latency (summed in read order, the
  // synchronous flush order) and nothing from cancelled work.
  auto sync = make_router(3, false, BackendKind::Circuit);
  auto async = make_router(3, false, BackendKind::Circuit);
  const auto fifo = sync->search_batch(reads_, 4, StrategyMode::Full, 3);

  SearchService service(*async);
  std::promise<std::shared_ptr<SearchTicket>> handle;
  std::shared_future<std::shared_ptr<SearchTicket>> handle_future =
      handle.get_future().share();
  std::atomic<std::size_t> delivered{0};
  SearchService::Options options;
  options.workers = 3;
  options.max_in_flight = 2;
  options.on_complete = [&delivered, handle_future](std::size_t,
                                                    const QueryResult&) {
    if (delivered.fetch_add(1) + 1 == 4) handle_future.get()->cancel();
  };
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  handle.set_value(ticket);
  ticket->wait();
  ASSERT_EQ(ticket->state(), TicketState::Cancelled);

  double expected_energy = 0.0;
  double expected_latency = 0.0;
  std::size_t done = 0;
  for (std::size_t i = 0; i < ticket->size(); ++i)
    if (ticket->outcome(i) == ReadOutcome::Done) {
      ++done;
      expect_read_equal(ticket->result(i), fifo[i], i);
      expected_energy += fifo[i].energy_joules;
      expected_latency += fifo[i].latency_seconds;
    }
  ASSERT_GE(done, 4u);
  ASSERT_LT(done, ticket->size());
  const ExecutionTotals totals = async->totals();
  EXPECT_EQ(totals.queries, done);
  EXPECT_EQ(totals.energy_joules, expected_energy);
  EXPECT_EQ(totals.latency_seconds, expected_latency);
  const TicketStats stats = ticket->stats();
  EXPECT_EQ(stats.booked_energy_joules, expected_energy);
  EXPECT_EQ(stats.booked_latency_seconds, expected_latency);
}

TEST_F(SchedulerTest, ConcurrentCancelAndWaitDoubleCallIsSafe) {
  // Races pinned down for TSan: cancel() from two threads while the
  // control thread wait()s, double-cancel, double-wait. Whatever the
  // interleaving, every Done read is bit-identical to FIFO and the
  // ledger books exactly the Done subset.
  for (int round = 0; round < 4; ++round) {
    auto sync = make_router(3, true, BackendKind::Circuit);
    auto async = make_router(3, true, BackendKind::Circuit);
    const auto fifo = sync->search_batch(reads_, 4, StrategyMode::Full, 4);

    SearchService service(*async);
    SearchService::Options options;
    options.workers = 4;
    options.max_in_flight = 4;
    auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
    std::thread canceller1([&] { ticket->cancel(); });
    std::thread canceller2([&] { ticket->cancel(); });
    ticket->wait();
    ticket->wait();  // idempotent
    canceller1.join();
    canceller2.join();

    EXPECT_TRUE(ticket->done());
    EXPECT_TRUE(ticket->state() == TicketState::Cancelled ||
                ticket->state() == TicketState::Done);
    double expected_energy = 0.0;
    std::size_t done = 0;
    for (std::size_t i = 0; i < ticket->size(); ++i)
      if (ticket->outcome(i) == ReadOutcome::Done) {
        ++done;
        expect_read_equal(ticket->result(i), fifo[i], i);
        expected_energy += fifo[i].energy_joules;
      }
    EXPECT_EQ(async->totals().queries, done);
    EXPECT_EQ(async->totals().energy_joules, expected_energy);
  }
}

// ----------------------------------------------------- deadlines (virtual)

TEST_F(SchedulerTest, DeadlineExpiryIsDeterministicUnderVirtualClock) {
  auto sync = make_router(1, true, BackendKind::Circuit);
  auto async = make_router(1, true, BackendKind::Circuit);
  const auto fifo = sync->search_batch(reads_, 4, StrategyMode::Full, 2);

  VirtualClock clock;
  SearchService::Config config;
  config.clock = &clock;
  SearchService service(*async, config);
  SearchService::Options options;
  options.workers = 2;
  options.max_in_flight = 1;  // serialise reads: expiry point is exact
  options.deadline_seconds = 10.0;
  std::atomic<std::size_t> delivered{0};
  options.on_complete = [&](std::size_t, const QueryResult&) {
    if (delivered.fetch_add(1) + 1 == 3) clock.advance(20.0);
  };
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  ticket->wait();

  EXPECT_EQ(ticket->state(), TicketState::Expired);
  const TicketStats stats = ticket->stats();
  EXPECT_EQ(stats.done, 3u);
  EXPECT_EQ(stats.expired, ticket->size() - 3);
  EXPECT_EQ(stats.cancelled, 0u);
  for (std::size_t i = 0; i < 3; ++i)
    expect_read_equal(ticket->result(i), fifo[i], i);
  try {
    (void)ticket->result(5);
    FAIL() << "result() of an expired read must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.kind(), ServiceErrorKind::Expired);
  }
}

TEST_F(SchedulerTest, ExpiredTicketReleasesAdmissionSlots) {
  auto sync = make_router(1, true, BackendKind::Circuit);
  auto async = make_router(1, true, BackendKind::Circuit);
  (void)sync->search_batch(reads_, 4, StrategyMode::Full, 2);  // epoch 1
  const std::vector<Sequence> second_batch = prefix(8);
  const auto fifo_second =
      sync->search_batch(second_batch, 4, StrategyMode::Full, 2);  // epoch 2

  VirtualClock clock;
  SearchService::Config config;
  config.clock = &clock;
  config.max_in_flight_reads = 2;
  SearchService service(*async, config);
  SearchService::Options options;
  options.workers = 2;
  options.max_in_flight = 2;
  options.deadline_seconds = 5.0;
  std::atomic<std::size_t> delivered{0};
  options.on_complete = [&](std::size_t, const QueryResult&) {
    if (delivered.fetch_add(1) == 0) clock.advance(100.0);
  };
  auto first = service.submit(reads_, 4, StrategyMode::Full, options);
  first->wait();
  ASSERT_EQ(first->state(), TicketState::Expired);
  ASSERT_LT(first->stats().done, first->size());

  // Every admission slot and queue place must be back.
  EXPECT_EQ(service.in_flight_reads(), 0u);
  EXPECT_EQ(service.queued_reads(), 0u);

  // And a subsequent ticket admits and completes normally, bit-identical
  // to its FIFO twin (epoch 2 — the expired ticket still consumed one).
  SearchService::Options clean;
  clean.workers = 2;
  auto second = service.submit(second_batch, 4, StrategyMode::Full, clean);
  expect_identical(second->drain(), fifo_second);
}

// ------------------------------------------------------ bounded admission

TEST_F(SchedulerTest, TrySubmitRejectsWhenQueueFullThenRecovers) {
  auto sync = make_router(1, true, BackendKind::Functional);
  auto async = make_router(1, true, BackendKind::Functional);
  (void)sync->search_batch(reads_, 4, StrategyMode::Full, 2);  // epoch 1
  const std::vector<Sequence> second_batch = prefix(16);
  const auto fifo_second =
      sync->search_batch(second_batch, 4, StrategyMode::Full, 2);  // epoch 2

  ThreadPool& pool = async->worker_pool(2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit([opened] { opened.wait(); });

  SearchService::Config config;
  config.max_pending_reads = 32;
  config.max_in_flight_reads = 1;
  SearchService service(*async, config);
  SearchService::Options options;
  options.workers = 2;
  auto bulk = service.submit(reads_, 4, StrategyMode::Full, options);
  // 24 reads reserved, 1 granted: 23 pending. 23 + 16 > 32 — reject, and
  // crucially WITHOUT bumping the batch epoch.
  try {
    (void)service.try_submit(second_batch, 4, StrategyMode::Full, options);
    FAIL() << "try_submit over a full queue must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.kind(), ServiceErrorKind::AdmissionFull);
  }
  gate.set_value();
  bulk->wait();
  EXPECT_EQ(service.queued_reads(), 0u);
  // Queue drained: the same submission is admitted now, and its results
  // prove the failed attempt had no side effects (same epoch-2 streams).
  auto second =
      service.try_submit(second_batch, 4, StrategyMode::Full, options);
  expect_identical(second->drain(), fifo_second);
}

TEST_F(SchedulerTest, BlockingSubmitWaitsForSpaceInsteadOfFailing) {
  auto sync = make_router(1, true, BackendKind::Circuit);
  auto async = make_router(1, true, BackendKind::Circuit);
  const auto fifo_first = sync->search_batch(reads_, 4, StrategyMode::Full, 2);
  const std::vector<Sequence> second_batch = prefix(8);
  const auto fifo_second =
      sync->search_batch(second_batch, 4, StrategyMode::Full, 2);

  SearchService::Config config;
  config.max_pending_reads = 26;
  config.max_in_flight_reads = 2;
  SearchService service(*async, config);
  SearchService::Options options;
  options.workers = 2;
  auto first = service.submit(reads_, 4, StrategyMode::Full, options);
  // 8 more reads do not fit until the first ticket drains below 18
  // pending: submit() must block, then proceed — never throw. (The
  // control plane moves to this thread for the duration; the main thread
  // makes no service calls until it joins.)
  std::shared_ptr<SearchTicket> second;
  std::thread submitter([&] {
    second = service.submit(second_batch, 4, StrategyMode::Full, options);
  });
  submitter.join();
  ASSERT_NE(second, nullptr);
  first->wait();
  second->wait();
  expect_identical(first->drain(), fifo_first);
  expect_identical(second->drain(), fifo_second);
}

TEST_F(SchedulerTest, OversizedSubmissionFailsFastInBothModes) {
  auto sync = make_router(1, true, BackendKind::Functional);
  auto async = make_router(1, true, BackendKind::Functional);
  const auto fifo = sync->search_batch(reads_, 4, StrategyMode::Full, 2);

  SearchService::Config config;
  config.max_pending_reads = 8;
  SearchService service(*async, config);
  SearchService::Options options;
  options.workers = 2;
  // 24 reads can never fit an 8-read queue: both the blocking and the
  // fail-fast paths must reject instead of deadlocking.
  EXPECT_THROW((void)service.submit(reads_, 4, StrategyMode::Full, options),
               ServiceError);
  EXPECT_THROW(
      (void)service.try_submit(reads_, 4, StrategyMode::Full, options),
      ServiceError);
  // Neither rejection had side effects: the synchronous path still draws
  // epoch-1 streams and matches its twin bit-for-bit.
  expect_identical(async->search_batch(reads_, 4, StrategyMode::Full, 2),
                   fifo);
}

TEST_F(SchedulerTest, InvalidConfigAndOptionsAreRejected) {
  auto async = make_router(1, true, BackendKind::Functional);
  SearchService::Config bad;
  bad.class_weights = {16, 0, 1};
  try {
    SearchService broken(*async, bad);
    FAIL() << "a zero class weight must be rejected";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.kind(), ServiceErrorKind::InvalidOptions);
  }

  SearchService service(*async);
  SearchService::Options options;
  options.workers = 2;
  options.deadline_seconds = -1.0;
  try {
    (void)service.submit(reads_, 4, StrategyMode::Full, options);
    FAIL() << "a negative deadline must be rejected";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.kind(), ServiceErrorKind::InvalidOptions);
  }
}

// ------------------------------------------------ re-sequencer under abort

TEST_F(SchedulerTest, ResequencerNotWedgedByCancelledReads) {
  // PR-3 returned in-order admission slots at DELIVERY; a cancelled read
  // ahead of the re-sequencer head must flush through like a completed
  // one — wait() returns, the window never wedges, and the service stays
  // usable. The cancel fires from INSIDE an in-order delivery callback,
  // the nastiest re-entrancy path.
  auto sync = make_router(3, true, BackendKind::Circuit);
  auto async = make_router(3, true, BackendKind::Circuit);
  const auto fifo = sync->search_batch(reads_, 4, StrategyMode::Full, 3);
  const std::vector<Sequence> second_batch = prefix(6);
  const auto fifo_second =
      sync->search_batch(second_batch, 4, StrategyMode::Full, 3);

  SearchService service(*async);
  std::promise<std::shared_ptr<SearchTicket>> handle;
  std::shared_future<std::shared_ptr<SearchTicket>> handle_future =
      handle.get_future().share();
  std::mutex order_mutex;
  std::vector<std::size_t> delivered;
  SearchService::Options options;
  options.workers = 3;
  options.max_in_flight = 2;
  options.in_order = true;
  options.keep_results = false;
  options.on_complete = [&](std::size_t index, const QueryResult& result) {
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      delivered.push_back(index);
    }
    expect_read_equal(result, fifo[index], index);
    if (index == 1) handle_future.get()->cancel();
  };
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  handle.set_value(ticket);
  ticket->wait();  // the wedge assertion: this must return

  EXPECT_TRUE(ticket->done());
  EXPECT_EQ(ticket->state(), TicketState::Cancelled);
  EXPECT_LE(ticket->peak_in_flight(), 2u);
  // In-order delivery of exactly the Done reads, ascending.
  std::vector<std::size_t> expected_delivery;
  for (std::size_t i = 0; i < ticket->size(); ++i)
    if (ticket->outcome(i) == ReadOutcome::Done) expected_delivery.push_back(i);
  EXPECT_EQ(delivered, expected_delivery);
  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));

  // The window was returned: a follow-up in-order ticket runs to
  // completion on the same service.
  SearchService::Options clean;
  clean.workers = 3;
  clean.in_order = true;
  auto second = service.submit(second_batch, 4, StrategyMode::Full, clean);
  expect_identical(second->drain(), fifo_second);
}

// ------------------------------------------------------- virtual-clock stats

TEST_F(SchedulerTest, VirtualClockTwoRunsProduceIdenticalStats) {
  // Scheduling observability itself must be reproducible when time is
  // injected: two identical runs under a virtual clock yield bit-equal
  // TicketStats and per-read timings.
  const auto run = [&] {
    VirtualClock clock;
    auto router = make_router(1, true, BackendKind::Circuit);
    SearchService::Config config;
    config.clock = &clock;
    SearchService service(*router, config);
    SearchService::Options options;
    options.workers = 2;
    options.max_in_flight = 1;  // serialise: the clock script is exact
    options.on_complete = [&clock](std::size_t, const QueryResult&) {
      clock.advance(0.25);
    };
    auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
    ticket->wait();
    return std::make_pair(ticket->stats(), ticket->read_timings());
  };
  const auto [stats_a, timings_a] = run();
  const auto [stats_b, timings_b] = run();

  EXPECT_EQ(stats_a.done, stats_b.done);
  EXPECT_EQ(stats_a.done, reads_.size());
  const auto expect_pct_eq = [](const LatencyPercentiles& a,
                                const LatencyPercentiles& b) {
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p95, b.p95);
    EXPECT_EQ(a.p99, b.p99);
  };
  expect_pct_eq(stats_a.queue_wait, stats_b.queue_wait);
  expect_pct_eq(stats_a.execution, stats_b.execution);
  expect_pct_eq(stats_a.merge, stats_b.merge);
  expect_pct_eq(stats_a.completion, stats_b.completion);
  expect_pct_eq(stats_a.model_latency, stats_b.model_latency);
  expect_pct_eq(stats_a.model_energy, stats_b.model_energy);
  EXPECT_EQ(stats_a.booked_energy_joules, stats_b.booked_energy_joules);
  ASSERT_EQ(timings_a.size(), timings_b.size());
  for (std::size_t i = 0; i < timings_a.size(); ++i) {
    EXPECT_EQ(timings_a[i].outcome, timings_b[i].outcome);
    EXPECT_EQ(timings_a[i].started, timings_b[i].started);
    EXPECT_EQ(timings_a[i].merged, timings_b[i].merged);
    EXPECT_EQ(timings_a[i].model_latency_seconds,
              timings_b[i].model_latency_seconds);
    EXPECT_EQ(timings_a[i].model_energy_joules,
              timings_b[i].model_energy_joules);
  }
  // The clock script is known: read k starts at 0.25 * k.
  EXPECT_EQ(timings_a[4].started, 1.0);
}

TEST_F(SchedulerTest, StatsPercentilesMatchDeterministicModel) {
  auto sync = make_router(2, true, BackendKind::Circuit);
  auto async = make_router(2, true, BackendKind::Circuit);
  const auto fifo = sync->search_batch(reads_, 4, StrategyMode::Full, 2);

  // While gated (nothing can complete), stats() must refuse — the ticket
  // is not terminal.
  ThreadPool& pool = async->worker_pool(2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit([opened] { opened.wait(); });
  SearchService service(*async);
  SearchService::Options options;
  options.workers = 2;
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  try {
    (void)ticket->stats();
    FAIL() << "stats() on a running ticket must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.kind(), ServiceErrorKind::NotTerminal);
  }
  gate.set_value();
  ticket->wait();

  // Model-cost percentiles are pure functions of the deterministic
  // per-read results — recompute them from the FIFO twin.
  std::vector<double> latencies;
  std::vector<double> energies;
  double energy_sum = 0.0;
  for (const QueryResult& r : fifo) {
    latencies.push_back(r.latency_seconds);
    energies.push_back(r.energy_joules);
    energy_sum += r.energy_joules;
  }
  const TicketStats stats = ticket->stats();
  EXPECT_EQ(stats.reads, fifo.size());
  EXPECT_EQ(stats.done, fifo.size());
  EXPECT_EQ(stats.model_latency.p50, percentile_of(latencies, 0.50));
  EXPECT_EQ(stats.model_latency.p95, percentile_of(latencies, 0.95));
  EXPECT_EQ(stats.model_latency.p99, percentile_of(latencies, 0.99));
  EXPECT_EQ(stats.model_energy.p50, percentile_of(energies, 0.50));
  EXPECT_EQ(stats.model_energy.p99, percentile_of(energies, 0.99));
  EXPECT_EQ(stats.booked_energy_joules, energy_sum);
  // Wall-clock phases are ordered even if their absolute values vary.
  EXPECT_LE(stats.queue_wait.p50, stats.completion.p50);
  EXPECT_LE(stats.completion.p50, stats.completion.p99);
}

// ------------------------------------------------------------------ stress

TEST_F(SchedulerTest, StressPolicyMixBitIdenticalOnEveryBackend) {
  // The headline property under chaos: five tickets with shuffled
  // priority classes, a tight global budget, per-ticket windows smaller
  // than the batch, one ticket under a real (steady-clock) deadline, one
  // cancelled from another thread at a racy instant, one in-order — on
  // all three backends, noisy circuit sensing included. Whatever
  // completes must be bit-identical to FIFO; whatever doesn't must book
  // nothing.
  int iters = 2;
  if (const char* env = std::getenv("ASMCAP_SCHEDULER_STRESS_ITERS"))
    iters = std::max(1, std::atoi(env));
  struct Case {
    bool ideal;
    BackendKind backend;
  };
  const Case cases[] = {Case{true, BackendKind::Circuit},
                        Case{false, BackendKind::Circuit},
                        Case{true, BackendKind::Functional}};
  const ServiceClass classes[] = {ServiceClass::Bulk, ServiceClass::Interactive,
                                  ServiceClass::Normal, ServiceClass::Bulk,
                                  ServiceClass::Interactive};
  Rng chaos(777);
  for (int iter = 0; iter < iters; ++iter) {
    for (const Case& c : cases) {
      auto sync = make_router(3, c.ideal, c.backend);
      auto async = make_router(3, c.ideal, c.backend);
      std::vector<std::vector<Sequence>> batches;
      std::vector<std::vector<QueryResult>> fifo;
      for (std::size_t t = 0; t < 5; ++t) {
        batches.push_back(prefix(8 + 4 * t));
        fifo.push_back(
            sync->search_batch(batches[t], 4, StrategyMode::Full, 4));
      }

      SearchService::Config config;
      config.max_in_flight_reads = 3;
      SearchService service(*async, config);
      const std::size_t deadline_ticket = 1 + iter % 2;
      const std::size_t cancel_ticket = (2 + iter) % 5;
      std::vector<std::shared_ptr<SearchTicket>> tickets;
      for (std::size_t t = 0; t < 5; ++t) {
        SearchService::Options options;
        options.workers = 4;
        options.max_in_flight = 2;
        options.service_class = classes[t];
        options.in_order = (t == 3);
        if (t == deadline_ticket) options.deadline_seconds = 0.002;
        tickets.push_back(
            service.submit(batches[t], 4, StrategyMode::Full, options));
      }
      const auto nap = chaos.below(2000);
      std::thread canceller([&, nap] {
        std::this_thread::sleep_for(std::chrono::microseconds(nap));
        tickets[cancel_ticket]->cancel();
      });
      for (auto& ticket : tickets) ticket->wait();  // submission order
      canceller.join();

      double expected_energy = 0.0;
      double expected_latency = 0.0;
      std::size_t expected_queries = 0;
      for (std::size_t t = 0; t < 5; ++t) {
        const auto& ticket = *tickets[t];
        EXPECT_TRUE(ticket.done());
        EXPECT_LE(ticket.peak_in_flight(), 2u);
        std::size_t terminal = 0;
        for (std::size_t i = 0; i < ticket.size(); ++i) {
          const ReadOutcome outcome = ticket.outcome(i);
          ASSERT_NE(outcome, ReadOutcome::Pending);
          ASSERT_NE(outcome, ReadOutcome::Failed);
          ++terminal;
          if (outcome != ReadOutcome::Done) continue;
          expect_read_equal(ticket.result(i), fifo[t][i], i);
          expected_energy += fifo[t][i].energy_joules;
          expected_latency += fifo[t][i].latency_seconds;
          ++expected_queries;
        }
        EXPECT_EQ(terminal, ticket.size());
        const TicketStats stats = ticket.stats();
        EXPECT_EQ(stats.done + stats.cancelled + stats.expired,
                  ticket.size());
      }
      // The ledger is exactly the Done subset, summed in flush order.
      const ExecutionTotals totals = async->totals();
      EXPECT_EQ(totals.queries, expected_queries);
      EXPECT_EQ(totals.energy_joules, expected_energy);
      EXPECT_EQ(totals.latency_seconds, expected_latency);
      // Scheduler fully drained.
      EXPECT_EQ(service.in_flight_reads(), 0u);
      EXPECT_EQ(service.queued_reads(), 0u);
    }
  }
}

}  // namespace
}  // namespace asmcap
