#include "baseline/seed_extend.h"

#include <gtest/gtest.h>

#include "align/edit_distance.h"
#include "baseline/savi.h"
#include "genome/edits.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

class SeedExtendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(901);
    const Sequence reference = generate_reference(128 * 18 + 256, {}, rng);
    rows_ = segment_reference(reference, 128);
    rows_.resize(18);
    baseline_.index_rows(rows_);
  }
  std::vector<Sequence> rows_;
  SeedExtendBaseline baseline_;
};

TEST_F(SeedExtendTest, FindsCleanRead) {
  const auto decisions = baseline_.decide_rows(rows_[7], 2);
  EXPECT_TRUE(decisions[7]);
  EXPECT_GE(baseline_.last_candidates(), 1u);
}

TEST_F(SeedExtendTest, VerificationIsExactOnCandidates) {
  Rng rng(903);
  const EditedSequence edited =
      inject_edits(rows_[4], {0.02, 0.005, 0.005}, rng);
  for (std::size_t t : {std::size_t{1}, std::size_t{4}, std::size_t{10}}) {
    const auto decisions = baseline_.decide_rows(edited.seq, t);
    // Row 4 certainly seeds (shares long exact stretches); its decision
    // must equal the exact banded verdict.
    EXPECT_EQ(decisions[4],
              banded_edit_distance(rows_[4], edited.seq, t).within_band)
        << "t=" << t;
  }
}

TEST_F(SeedExtendTest, RejectsForeignReads) {
  Rng rng(905);
  const Sequence foreign = Sequence::random(128, rng);
  const auto decisions = baseline_.decide_rows(foreign, 8);
  for (bool d : decisions) EXPECT_FALSE(d);
}

TEST_F(SeedExtendTest, MoreAccurateThanVotingUnderHeavyErrors) {
  // Seed-and-extend verifies candidates exactly, so it tolerates error
  // levels that break the vote threshold (the accuracy/throughput
  // trade-off of §II-B).
  SaviBaseline savi;
  savi.index_rows(rows_);
  Rng rng(907);
  std::size_t extend_hits = 0;
  std::size_t vote_hits = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const EditedSequence edited = inject_edits(rows_[2], {0.12, 0.0, 0.0}, rng);
    const std::size_t threshold = 24;
    if (baseline_.decide_rows(edited.seq, threshold)[2]) ++extend_hits;
    if (savi.decide_rows(edited.seq)[2]) ++vote_hits;
  }
  EXPECT_GE(extend_hits, vote_hits);
  EXPECT_GT(extend_hits, trials / 2);
}

TEST_F(SeedExtendTest, CandidateCapRespected) {
  SeedExtendConfig config;
  config.max_candidates = 2;
  SeedExtendBaseline capped(config);
  // Make every row identical so all rows seed on any read.
  std::vector<Sequence> same(10, rows_[0]);
  capped.index_rows(same);
  capped.decide_rows(rows_[0], 2);
  EXPECT_LE(capped.last_candidates(), 3u);  // cap + the breaking increment
}

TEST_F(SeedExtendTest, ShortReadSafe) {
  Rng rng(909);
  const auto decisions = baseline_.decide_rows(Sequence::random(8, rng), 2);
  for (bool d : decisions) EXPECT_FALSE(d);
  EXPECT_EQ(baseline_.last_candidates(), 0u);
}

TEST(SeedExtendPerf, ScalesWithCandidatesAndLength) {
  const SeedExtendBaseline baseline;
  EXPECT_GT(baseline.seconds_per_read(256, 8),
            baseline.seconds_per_read(256, 1));
  EXPECT_GT(baseline.seconds_per_read(512, 4),
            baseline.seconds_per_read(256, 4));
  EXPECT_GT(baseline.joules_per_read(256, 4), 0.0);
  // Extension dominates the budget at typical candidate counts: the DP
  // term must exceed the lookup term for >= 2 candidates.
  const double lookup_only = baseline.seconds_per_read(256, 0);
  EXPECT_GT(baseline.seconds_per_read(256, 2) - lookup_only, lookup_only);
}

}  // namespace
}  // namespace asmcap
