#include "align/semiglobal.h"

#include <gtest/gtest.h>

#include "align/edit_distance.h"
#include "genome/edits.h"

namespace asmcap {
namespace {

TEST(SemiGlobal, ExactEmbeddedWindow) {
  Rng rng(91);
  const Sequence reference = Sequence::random(3000, rng);
  const Sequence read = reference.subseq(1111, 200);
  const SemiGlobalHit hit = semiglobal_align(read, reference);
  EXPECT_EQ(hit.distance, 0u);
  EXPECT_EQ(hit.end, 1311u);
  EXPECT_EQ(hit.begin, 1111u);
}

TEST(SemiGlobal, LocatesMutatedWindow) {
  Rng rng(93);
  const Sequence reference = Sequence::random(5000, rng);
  const Sequence window = reference.subseq(2500, 256);
  const EditedSequence mutated = inject_edits(window, {0.02, 0.01, 0.01}, rng);
  const SemiGlobalHit hit = semiglobal_align(mutated.seq, reference);
  EXPECT_LE(hit.distance, mutated.edits.size());
  EXPECT_NEAR(static_cast<double>(hit.begin), 2500.0, 8.0);
}

TEST(SemiGlobal, WindowRestriction) {
  Rng rng(95);
  const Sequence reference = Sequence::random(2000, rng);
  const Sequence read = reference.subseq(500, 100);
  // Searching only [1000, 2000) must not find the perfect hit at 500.
  const SemiGlobalHit outside =
      semiglobal_align_window(read, reference, 1000, 2000);
  EXPECT_GT(outside.distance, 0u);
  const SemiGlobalHit inside =
      semiglobal_align_window(read, reference, 400, 700);
  EXPECT_EQ(inside.distance, 0u);
  EXPECT_EQ(inside.begin, 500u);
  EXPECT_EQ(inside.end, 600u);
}

TEST(SemiGlobal, EmptyReadThrows) {
  Rng rng(97);
  const Sequence reference = Sequence::random(100, rng);
  EXPECT_THROW(semiglobal_align(Sequence{}, reference), std::invalid_argument);
}

TEST(SemiGlobal, BadWindowThrows) {
  Rng rng(99);
  const Sequence reference = Sequence::random(100, rng);
  const Sequence read = Sequence::random(10, rng);
  EXPECT_THROW(semiglobal_align_window(read, reference, 50, 200),
               std::out_of_range);
  EXPECT_THROW(semiglobal_align_window(read, reference, 60, 50),
               std::out_of_range);
}

TEST(SemiGlobal, DistanceNeverExceedsGlobal) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence reference = Sequence::random(400, rng);
    const Sequence read = Sequence::random(100, rng);
    const SemiGlobalHit hit = semiglobal_align(read, reference);
    EXPECT_LE(hit.distance, edit_distance(read, reference));
    EXPECT_LE(hit.distance, read.size());
    EXPECT_LE(hit.begin, hit.end);
    EXPECT_LE(hit.end, reference.size());
  }
}

TEST(SemiGlobal, BeginConsistentWithWindowDistance) {
  // The reported window [begin, end) must actually align to the read at
  // (approximately) the reported distance.
  Rng rng(103);
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence reference = Sequence::random(1500, rng);
    const Sequence window = reference.subseq(600, 128);
    const EditedSequence mutated = inject_edits(window, {0.03, 0.01, 0.01}, rng);
    const SemiGlobalHit hit = semiglobal_align(mutated.seq, reference);
    ASSERT_LE(hit.begin, hit.end);
    const Sequence found =
        reference.subseq(hit.begin, hit.end - hit.begin);
    EXPECT_EQ(edit_distance(mutated.seq, found), hit.distance);
  }
}

}  // namespace
}  // namespace asmcap
