#include "genome/sequence.h"

#include <gtest/gtest.h>

#include "genome/base.h"

namespace asmcap {
namespace {

TEST(Base, RoundTripCodes) {
  for (std::uint8_t code = 0; code < 4; ++code) {
    const Base b = base_from_code(code);
    EXPECT_EQ(code_of(b), code);
    EXPECT_EQ(base_from_char(to_char(b)).value(), b);
  }
}

TEST(Base, CharParsing) {
  EXPECT_EQ(base_from_char('a').value(), Base::A);
  EXPECT_EQ(base_from_char('T').value(), Base::T);
  EXPECT_FALSE(base_from_char('N').has_value());
  EXPECT_FALSE(base_from_char('x').has_value());
  EXPECT_FALSE(base_from_char(' ').has_value());
}

TEST(Base, Complement) {
  EXPECT_EQ(complement(Base::A), Base::T);
  EXPECT_EQ(complement(Base::T), Base::A);
  EXPECT_EQ(complement(Base::C), Base::G);
  EXPECT_EQ(complement(Base::G), Base::C);
}

TEST(Sequence, FromStringRoundTrip) {
  const Sequence s = Sequence::from_string("ACGTACGTTGCA");
  EXPECT_EQ(s.size(), 12u);
  EXPECT_EQ(s.to_string(), "ACGTACGTTGCA");
  EXPECT_EQ(s[0], Base::A);
  EXPECT_EQ(s[3], Base::T);
}

TEST(Sequence, FromStringRejectsInvalid) {
  EXPECT_THROW(Sequence::from_string("ACGN"), std::invalid_argument);
}

TEST(Sequence, LengthConstructorIsAllA) {
  const Sequence s(9);
  EXPECT_EQ(s.to_string(), "AAAAAAAAA");
}

TEST(Sequence, SetAndAt) {
  Sequence s(5);
  s.set(2, Base::G);
  EXPECT_EQ(s.at(2), Base::G);
  EXPECT_THROW(s.at(5), std::out_of_range);
  EXPECT_THROW(s.set(5, Base::A), std::out_of_range);
}

TEST(Sequence, PushBackAcrossByteBoundaries) {
  Sequence s;
  const std::string text = "ACGTACGTA";  // 9 bases: crosses two byte edges
  for (char c : text) s.push_back(base_from_char(c).value());
  EXPECT_EQ(s.to_string(), text);
}

TEST(Sequence, Subseq) {
  const Sequence s = Sequence::from_string("ACGTACGT");
  EXPECT_EQ(s.subseq(2, 4).to_string(), "GTAC");
  EXPECT_EQ(s.subseq(0, 0).size(), 0u);
  EXPECT_THROW(s.subseq(5, 4), std::out_of_range);
}

TEST(Sequence, InsertErase) {
  Sequence s = Sequence::from_string("ACGT");
  s.insert(2, Base::T);
  EXPECT_EQ(s.to_string(), "ACTGT");
  s.insert(5, Base::A);  // append position
  EXPECT_EQ(s.to_string(), "ACTGTA");
  s.erase(0);
  EXPECT_EQ(s.to_string(), "CTGTA");
  s.erase(4);
  EXPECT_EQ(s.to_string(), "CTGT");
  EXPECT_THROW(s.erase(4), std::out_of_range);
  EXPECT_THROW(s.insert(6, Base::A), std::out_of_range);
}

TEST(Sequence, RotationLeftRight) {
  const Sequence s = Sequence::from_string("ACGTT");
  EXPECT_EQ(s.rotated_left(1).to_string(), "CGTTA");
  EXPECT_EQ(s.rotated_right(1).to_string(), "TACGT");
  EXPECT_EQ(s.rotated_left(5).to_string(), "ACGTT");
  EXPECT_EQ(s.rotated_left(7).to_string(), s.rotated_left(2).to_string());
}

TEST(Sequence, RotationInverses) {
  Rng rng(5);
  const Sequence s = Sequence::random(97, rng);
  for (std::size_t k : {std::size_t{1}, std::size_t{13}, std::size_t{96}}) {
    EXPECT_EQ(s.rotated_left(k).rotated_right(k), s);
  }
}

TEST(Sequence, ReverseComplement) {
  const Sequence s = Sequence::from_string("AACGT");
  EXPECT_EQ(s.reverse_complement().to_string(), "ACGTT");
  // Involution.
  Rng rng(9);
  const Sequence r = Sequence::random(33, rng);
  EXPECT_EQ(r.reverse_complement().reverse_complement(), r);
}

TEST(Sequence, EqualityAndMismatchCount) {
  const Sequence a = Sequence::from_string("ACGT");
  const Sequence b = Sequence::from_string("ACGT");
  const Sequence c = Sequence::from_string("ACGA");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.mismatch_count(c), 1u);
  const Sequence d = Sequence::from_string("ACG");
  EXPECT_FALSE(a == d);
  EXPECT_THROW(a.mismatch_count(d), std::invalid_argument);
}

TEST(Sequence, RandomHasAllBases) {
  Rng rng(42);
  const Sequence s = Sequence::random(1000, rng);
  std::size_t counts[4] = {};
  for (std::size_t i = 0; i < s.size(); ++i) ++counts[code_of(s[i])];
  for (std::size_t c : counts) EXPECT_GT(c, 180u);  // roughly uniform
}

TEST(Sequence, EraseShrinksStorageConsistently) {
  Sequence s = Sequence::from_string("ACGTACGT");
  for (int i = 0; i < 8; ++i) s.erase(0);
  EXPECT_TRUE(s.empty());
  s.push_back(Base::G);
  EXPECT_EQ(s.to_string(), "G");
}

}  // namespace
}  // namespace asmcap
