// Tests of the streaming search service: submit/poll/drain equivalence
// with the synchronous search_batch path (bit-identical decisions, energy,
// latency, and ledger on both backends, noisy circuit included),
// out-of-order completion with the in-order re-sequencer, drain-under-load,
// admission throttling with more in-flight reads than pool threads, the
// single-shard no-staging path, callback error propagation, and the
// streaming read mapper built on top.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "asmcap/readmapper.h"
#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/readsim.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

AsmcapConfig bank_config(std::size_t array_count, bool ideal = true) {
  AsmcapConfig config;
  config.array_rows = 16;
  config.array_cols = 64;
  config.array_count = array_count;
  config.ideal_sensing = ideal;
  return config;
}

void expect_identical(const std::vector<QueryResult>& a,
                      const std::vector<QueryResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].decisions, b[i].decisions) << "read " << i;
    EXPECT_EQ(a[i].matched_segments, b[i].matched_segments) << "read " << i;
    EXPECT_EQ(a[i].energy_joules, b[i].energy_joules) << "read " << i;
    EXPECT_EQ(a[i].latency_seconds, b[i].latency_seconds) << "read " << i;
    EXPECT_EQ(a[i].plan.total_searches(), b[i].plan.total_searches());
  }
}

void expect_same_totals(const ExecutionTotals& a, const ExecutionTotals& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.searches, b.searches);
  EXPECT_EQ(a.hd_searches, b.hd_searches);
  EXPECT_EQ(a.rotation_searches, b.rotation_searches);
  EXPECT_EQ(a.latency_seconds, b.latency_seconds);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2301);
    reference_ = generate_reference(64 * 40 + 128, {}, rng);
    segments_ = segment_reference(reference_, 64);
    segments_.resize(40);

    Rng read_rng(2302);
    ReadSimConfig sim_config;
    sim_config.read_length = 64;
    sim_config.rates = ErrorRates::condition_a();
    const ReadSimulator sim(reference_, sim_config);
    for (int i = 0; i < 24; ++i) {
      switch (i % 3) {
        case 0:
          reads_.push_back(segments_[static_cast<std::size_t>(
              read_rng.below(segments_.size()))]);
          break;
        case 1:
          reads_.push_back(
              sim.simulate_at(read_rng.below(40) * 64, read_rng).read);
          break;
        default:
          reads_.push_back(Sequence::random(64, read_rng));
      }
    }
  }

  /// A freshly loaded router (twin construction: two calls with the same
  /// arguments produce bit-identical systems — same seed, same silicon).
  std::unique_ptr<ShardedAccelerator> make_router(std::size_t shards,
                                                  bool ideal,
                                                  BackendKind backend) {
    auto router =
        std::make_unique<ShardedAccelerator>(bank_config(4, ideal), shards);
    router->load_reference(segments_);
    router->set_backend(backend);
    return router;
  }

  Sequence reference_;
  std::vector<Sequence> segments_;
  std::vector<Sequence> reads_;
};

// ------------------------------------------------ sync/async equivalence --

TEST_F(ServiceTest, DrainBitIdenticalToSynchronousOnBothBackends) {
  // The core contract: submit + drain must equal search_batch bit-for-bit
  // — decisions, ids, energy, latency, AND ledger totals — on the noisy
  // circuit path and on the functional path, for a multi-shard router.
  struct Case {
    bool ideal;
    BackendKind backend;
  };
  for (const Case c : {Case{false, BackendKind::Circuit},
                       Case{true, BackendKind::Circuit},
                       Case{false, BackendKind::Functional}}) {
    auto sync = make_router(3, c.ideal, c.backend);
    auto async = make_router(3, c.ideal, c.backend);
    const auto expected = sync->search_batch(reads_, 4, StrategyMode::Full, 3);

    SearchService service(*async);
    SearchService::Options options;
    options.workers = 3;
    auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
    const auto got = ticket->drain();

    expect_identical(got, expected);
    expect_same_totals(async->totals(), sync->totals());
  }
}

TEST_F(ServiceTest, PollingSeesEveryReadAndMatchesSynchronous) {
  auto sync = make_router(2, true, BackendKind::Functional);
  auto async = make_router(2, true, BackendKind::Functional);
  const auto expected = sync->search_batch(reads_, 4, StrategyMode::Full, 2);

  SearchService service(*async);
  SearchService::Options options;
  options.workers = 2;
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  ASSERT_EQ(ticket->size(), reads_.size());

  // Poll until everything has merged, then read results per index.
  while (!ticket->done()) std::this_thread::yield();
  EXPECT_EQ(ticket->completed(), reads_.size());
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    ASSERT_TRUE(ticket->ready(i));
    EXPECT_EQ(ticket->result(i).decisions, expected[i].decisions);
  }
  ticket->wait();  // flush the ledger
  expect_same_totals(async->totals(), sync->totals());
}

TEST_F(ServiceTest, SingleShardRouterMatchesMonolithicThroughService) {
  // shards == 1 takes the no-staging fast path (the ReadMapper default):
  // still bit-identical to a plain AsmcapAccelerator, noisy circuit
  // included.
  const AsmcapConfig config = bank_config(4, /*ideal=*/false);
  AsmcapAccelerator mono(config);
  mono.load_reference(segments_);
  const auto expected = mono.search_batch(reads_, 4, StrategyMode::Full, 3);

  auto router = make_router(1, /*ideal=*/false, BackendKind::Circuit);
  SearchService service(*router);
  SearchService::Options options;
  options.workers = 3;
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  const auto got = ticket->drain();

  expect_identical(got, expected);
  expect_same_totals(router->totals(), mono.controller().totals());
}

// ------------------------------------------------------------- streaming --

TEST_F(ServiceTest, StreamingDeliversEveryReadExactlyOnce) {
  auto sync = make_router(3, true, BackendKind::Circuit);
  auto async = make_router(3, true, BackendKind::Circuit);
  const auto expected = sync->search_batch(reads_, 4, StrategyMode::Full, 3);

  std::vector<std::atomic<int>> delivered(reads_.size());
  std::vector<std::vector<std::size_t>> matched(reads_.size());
  std::mutex matched_mutex;

  SearchService service(*async);
  SearchService::Options options;
  options.workers = 3;
  options.keep_results = false;  // pure streaming: results released on emit
  options.on_complete = [&](std::size_t i, const QueryResult& result) {
    ++delivered[i];
    std::lock_guard<std::mutex> lock(matched_mutex);
    matched[i] = result.matched_segments;
  };
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  ticket->wait();

  for (std::size_t i = 0; i < reads_.size(); ++i) {
    EXPECT_EQ(delivered[i].load(), 1) << "read " << i;
    EXPECT_EQ(matched[i], expected[i].matched_segments) << "read " << i;
  }
  // Released results are gone: polling access and drain() both refuse.
  EXPECT_THROW(ticket->result(0), std::logic_error);
  EXPECT_THROW(ticket->drain(), std::logic_error);
  // ... but the ledger still recorded the full submission in read order.
  expect_same_totals(async->totals(), sync->totals());
}

TEST_F(ServiceTest, ResequencerDeliversInReadOrder) {
  auto sync = make_router(3, true, BackendKind::Functional);
  auto async = make_router(3, true, BackendKind::Functional);
  const auto expected = sync->search_batch(reads_, 4, StrategyMode::Full, 4);

  std::vector<std::size_t> order;
  std::vector<std::vector<std::size_t>> matched(reads_.size());
  SearchService service(*async);
  SearchService::Options options;
  options.workers = 4;
  options.in_order = true;  // re-sequencer: delivery serialised, in order
  options.on_complete = [&](std::size_t i, const QueryResult& result) {
    order.push_back(i);  // serialised by the re-sequencer lock
    matched[i] = result.matched_segments;
  };
  service.submit(reads_, 4, StrategyMode::Full, options)->wait();

  ASSERT_EQ(order.size(), reads_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
    EXPECT_EQ(matched[i], expected[i].matched_segments);
  }
}

TEST_F(ServiceTest, CallbackExceptionSurfacesAtWaitButLedgerIsKept) {
  // Every read executed (and burned real energy) before the consumer
  // callback failed: wait() must rethrow AND still record the full
  // submission — matching a twin whose consumer did not fail.
  auto sync = make_router(2, true, BackendKind::Functional);
  auto async = make_router(2, true, BackendKind::Functional);
  sync->search_batch(reads_, 4, StrategyMode::Full, 2);

  SearchService service(*async);
  SearchService::Options options;
  options.workers = 2;
  std::atomic<int> calls{0};
  options.on_complete = [&](std::size_t, const QueryResult&) {
    if (++calls == 3) throw std::runtime_error("consumer boom");
  };
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  EXPECT_THROW(ticket->wait(), std::runtime_error);
  expect_same_totals(async->totals(), sync->totals());
}

TEST_F(ServiceTest, InOrderStreamingStaysWithinAdmissionWindow) {
  // With the re-sequencer, a read returns its admission slot only when
  // DELIVERED, so merged-but-held results also count against the window:
  // peak_in_flight stays bounded even when completion order scrambles.
  std::vector<Sequence> load;
  for (int rep = 0; rep < 4; ++rep)
    load.insert(load.end(), reads_.begin(), reads_.end());

  auto router = make_router(3, true, BackendKind::Functional);
  SearchService service(*router);
  SearchService::Options options;
  options.workers = 3;
  options.max_in_flight = 3;
  options.in_order = true;
  options.keep_results = false;
  std::vector<std::size_t> order;
  options.on_complete = [&](std::size_t i, const QueryResult&) {
    order.push_back(i);
  };
  auto ticket = service.submit_borrowed(load, 4, StrategyMode::Full,
                                        options);
  ticket->wait();
  ASSERT_EQ(order.size(), load.size());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_LE(ticket->peak_in_flight(), 3u);
  EXPECT_THROW(ticket->result(0), std::logic_error);
}

// -------------------------------------------------------- load / throttle --

TEST_F(ServiceTest, DrainUnderLoadWithMoreReadsThanThreads) {
  // A submission several times the pool width, drained immediately while
  // everything is still in flight: all reads arrive, in order, identical
  // to the synchronous run, and the admission window bounds the staging
  // memory (peak in-flight < total reads).
  std::vector<Sequence> load;
  for (int rep = 0; rep < 5; ++rep)
    load.insert(load.end(), reads_.begin(), reads_.end());

  auto sync = make_router(3, true, BackendKind::Functional);
  auto async = make_router(3, true, BackendKind::Functional);
  const auto expected = sync->search_batch(load, 4, StrategyMode::Full, 3);

  SearchService service(*async);
  SearchService::Options options;
  options.workers = 3;
  options.max_in_flight = 4;
  auto ticket = service.submit(load, 4, StrategyMode::Full, options);
  const auto got = ticket->drain();

  expect_identical(got, expected);
  EXPECT_EQ(ticket->completed(), load.size());
  EXPECT_EQ(ticket->max_in_flight(), 4u);
  EXPECT_GE(ticket->peak_in_flight(), 1u);
  EXPECT_LE(ticket->peak_in_flight(), 4u);
  EXPECT_LT(ticket->peak_in_flight(), load.size());
}

TEST_F(ServiceTest, ThrottleDefaultsToTwicePoolWidthAndStaysBounded) {
  auto router = make_router(7, true, BackendKind::Functional);
  SearchService service(*router);
  SearchService::Options options;
  options.workers = 2;
  auto ticket = service.submit(reads_, 4, StrategyMode::Full, options);
  ticket->wait();
  EXPECT_EQ(ticket->max_in_flight(), 4u);  // 2 x pool width
  EXPECT_LE(ticket->peak_in_flight(), 4u);
}

TEST_F(ServiceTest, BorrowedSubmissionMatchesOwning) {
  auto sync = make_router(3, true, BackendKind::Functional);
  auto async = make_router(3, true, BackendKind::Functional);
  const auto expected = sync->search_batch(reads_, 4, StrategyMode::Full, 2);

  SearchService service(*async);
  SearchService::Options options;
  options.workers = 2;
  auto ticket = service.submit_borrowed(reads_, 4, StrategyMode::Full,
                                        options);
  expect_identical(ticket->drain(), expected);
  expect_same_totals(async->totals(), sync->totals());
}

TEST_F(ServiceTest, PureFollowerWithoutCallbackReleasesResults) {
  // keep_results == false with no callback: the service still completes
  // and records the ledger, and every merged result is released on merge
  // (result() refuses, drain() refuses).
  auto sync = make_router(2, true, BackendKind::Functional);
  auto async = make_router(2, true, BackendKind::Functional);
  sync->search_batch(reads_, 4, StrategyMode::Full, 2);

  SearchService service(*async);
  SearchService::Options options;
  options.workers = 2;
  options.keep_results = false;
  auto ticket = service.submit_borrowed(reads_, 4, StrategyMode::Full,
                                        options);
  ticket->wait();
  EXPECT_TRUE(ticket->done());
  EXPECT_THROW(ticket->result(0), std::logic_error);
  EXPECT_THROW(ticket->drain(), std::logic_error);
  expect_same_totals(async->totals(), sync->totals());
}

TEST_F(ServiceTest, PoolGrowthClampedWhileTicketsInFlight) {
  // A wider second submission while the first is in flight must not
  // replace (and so destroy) the pool under the first ticket: the width
  // is clamped to the live pool, and both tickets stay correct.
  auto sync = make_router(3, true, BackendKind::Functional);
  auto async = make_router(3, true, BackendKind::Functional);
  const auto expected_a = sync->search_batch(reads_, 4, StrategyMode::Full, 2);
  const auto expected_b = sync->search_batch(reads_, 4, StrategyMode::Full, 6);

  SearchService service(*async);
  SearchService::Options narrow;
  narrow.workers = 2;
  SearchService::Options wide;
  wide.workers = 6;
  auto ticket_a = service.submit_borrowed(reads_, 4, StrategyMode::Full,
                                          narrow);
  auto ticket_b = service.submit_borrowed(reads_, 4, StrategyMode::Full,
                                          wide);
  expect_identical(ticket_a->drain(), expected_a);
  expect_identical(ticket_b->drain(), expected_b);
  expect_same_totals(async->totals(), sync->totals());
}

TEST_F(ServiceTest, SequentialSearchInterleavedWithInFlightTicket) {
  // The control thread may run a sequential search while a ticket is in
  // flight: the ticket forks from a submit-time RNG snapshot and a wider
  // interleaved search cannot replace the pool (growth clamp), so both
  // the search and the ticket match a twin that ran them back to back.
  auto sync = make_router(3, false, BackendKind::Circuit);
  auto async = make_router(3, false, BackendKind::Circuit);
  const auto expected_batch =
      sync->search_batch(reads_, 4, StrategyMode::Full, 2);
  const QueryResult expected_search =
      sync->search(reads_[0], 4, StrategyMode::Full, 8);

  SearchService service(*async);
  SearchService::Options options;
  options.workers = 2;
  auto ticket = service.submit_borrowed(reads_, 4, StrategyMode::Full,
                                        options);
  // While the ticket executes: a sequential search asking for MORE
  // workers than the live pool has (exercises the growth clamp).
  const QueryResult got_search = async->search(reads_[0], 4,
                                               StrategyMode::Full, 8);
  expect_identical(ticket->drain(), expected_batch);
  EXPECT_EQ(got_search.decisions, expected_search.decisions);
  EXPECT_EQ(got_search.energy_joules, expected_search.energy_joules);
}

TEST_F(ServiceTest, ConcurrentTicketsOnOneRouter) {
  // Two submissions in flight at once from the control thread, drained in
  // order: equals two sequential synchronous batches (same epoch
  // sequence, same ledger order).
  const std::vector<Sequence> first(reads_.begin(), reads_.begin() + 12);
  const std::vector<Sequence> second(reads_.begin() + 12, reads_.end());

  auto sync = make_router(3, true, BackendKind::Functional);
  auto async = make_router(3, true, BackendKind::Functional);
  const auto expected_a = sync->search_batch(first, 4, StrategyMode::Full, 2);
  const auto expected_b = sync->search_batch(second, 4, StrategyMode::Full, 2);

  SearchService service(*async);
  SearchService::Options options;
  options.workers = 2;
  auto ticket_a = service.submit(first, 4, StrategyMode::Full, options);
  auto ticket_b = service.submit(second, 4, StrategyMode::Full, options);
  expect_identical(ticket_a->drain(), expected_a);
  expect_identical(ticket_b->drain(), expected_b);
  expect_same_totals(async->totals(), sync->totals());
}

// ------------------------------------------------------------ edge cases --

TEST_F(ServiceTest, EmptySubmissionIsImmediatelyDone) {
  auto sync = make_router(2, true, BackendKind::Functional);
  auto async = make_router(2, true, BackendKind::Functional);
  SearchService service(*async);
  auto ticket = service.submit({}, 4, StrategyMode::Full);
  EXPECT_TRUE(ticket->done());
  EXPECT_EQ(ticket->size(), 0u);
  ticket->wait();
  EXPECT_TRUE(ticket->drain().empty());
  // An empty submission leaves the batch epoch untouched, like the
  // synchronous path: the next real batch matches a twin's first batch.
  expect_identical(async->search_batch(reads_, 4, StrategyMode::Full, 2),
                   sync->search_batch(reads_, 4, StrategyMode::Full, 2));
}

TEST_F(ServiceTest, Validation) {
  ShardedAccelerator unloaded(bank_config(4), 2);
  SearchService bad(unloaded);
  EXPECT_THROW(bad.submit(reads_, 4, StrategyMode::Full), std::logic_error);

  auto router = make_router(2, true, BackendKind::Functional);
  SearchService service(*router);
  Rng rng(2303);
  std::vector<Sequence> narrow{Sequence::random(32, rng)};
  EXPECT_THROW(service.submit(narrow, 4, StrategyMode::Full),
               std::invalid_argument);

  auto ticket = service.submit(reads_, 4, StrategyMode::Full);
  EXPECT_THROW(ticket->ready(reads_.size()), std::out_of_range);
  ticket->drain();
  EXPECT_THROW(ticket->drain(), std::logic_error);  // already drained
  EXPECT_THROW(ticket->result(0), std::logic_error);
}

// ---------------------------------------------------- streaming mapper ----

TEST_F(ServiceTest, StreamingMapperMatchesPreviousBatchSemantics) {
  // map_batch now verifies each read as it streams out of the service;
  // results and cumulative stats must stay exactly what the drain-then-
  // verify implementation produced (worker-count invariant, too).
  std::vector<std::vector<MappedRead>> runs;
  std::vector<MappingStats> stats;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ReadMapper mapper(bank_config(4), segments_, 64, 3);
    std::vector<MappedRead> mapped;
    stats.push_back(
        mapper.map_batch(reads_, 4, StrategyMode::Full, &mapped, workers));
    runs.push_back(std::move(mapped));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].mapped, runs[1][i].mapped);
    EXPECT_EQ(runs[0][i].segment, runs[1][i].segment);
    EXPECT_EQ(runs[0][i].edit_distance, runs[1][i].edit_distance);
    EXPECT_EQ(runs[0][i].candidates, runs[1][i].candidates);
  }
  EXPECT_EQ(stats[0].mapped, stats[1].mapped);
  EXPECT_EQ(stats[0].total_candidates, stats[1].total_candidates);
  EXPECT_EQ(stats[0].host_dp_cells, stats[1].host_dp_cells);
  EXPECT_EQ(stats[0].reads, reads_.size());
}

}  // namespace
}  // namespace asmcap
