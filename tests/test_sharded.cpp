// Tests of the sharded multi-bank accelerator: shard-count and
// worker-count invariance of decisions, bit-identity of N == 1 with the
// monolithic accelerator (noisy circuit path included), global-index
// re-basing at shard boundaries, ledger-total equivalence against a
// monolithic bank of the same total geometry, capacity enforcement, and
// the sharded read mapper.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "asmcap/db_error.h"
#include "asmcap/readmapper.h"
#include "asmcap/sharded.h"
#include "eval/experiment.h"
#include "genome/readsim.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

AsmcapConfig bank_config(std::size_t array_count, bool ideal = true) {
  AsmcapConfig config;
  config.array_rows = 16;
  config.array_cols = 64;
  config.array_count = array_count;
  config.ideal_sensing = ideal;
  return config;
}

class ShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1201);
    reference_ = generate_reference(64 * 40 + 128, {}, rng);
    segments_ = segment_reference(reference_, 64);
    segments_.resize(40);

    Rng read_rng(1202);
    ReadSimConfig sim_config;
    sim_config.read_length = 64;
    sim_config.rates = ErrorRates::condition_a();
    const ReadSimulator sim(reference_, sim_config);
    for (int i = 0; i < 24; ++i) {
      switch (i % 3) {
        case 0:
          reads_.push_back(segments_[static_cast<std::size_t>(
              read_rng.below(segments_.size()))]);
          break;
        case 1:
          reads_.push_back(
              sim.simulate_at(read_rng.below(40) * 64, read_rng).read);
          break;
        default:
          reads_.push_back(Sequence::random(64, read_rng));
      }
    }
  }

  Sequence reference_;
  std::vector<Sequence> segments_;
  std::vector<Sequence> reads_;
};

// ------------------------------------------------ shard-count invariance --

TEST_F(ShardedTest, DecisionsInvariantInShardAndWorkerCount) {
  // Noise-free decision paths (ideal circuit sensing here) must produce
  // identical decisions however the database is sharded and however many
  // workers run the router — HDAC's selection coins included, because
  // every per-decision stream is keyed by global segment id.
  std::vector<std::vector<QueryResult>> runs;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
      ShardedAccelerator accel(bank_config(4), shards);
      accel.load_reference(segments_);
      runs.push_back(accel.search_batch(reads_, 4, StrategyMode::Full,
                                        workers));
    }
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].decisions, runs[0][i].decisions)
          << "run " << run << " read " << i;
      EXPECT_EQ(runs[run][i].matched_segments, runs[0][i].matched_segments);
      EXPECT_EQ(runs[run][i].plan.total_searches(),
                runs[0][i].plan.total_searches());
    }
  }
}

TEST_F(ShardedTest, FunctionalBackendInvariantAcrossShards) {
  std::vector<std::vector<QueryResult>> runs;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{5}}) {
    ShardedAccelerator accel(bank_config(4, /*ideal=*/false), shards);
    accel.load_reference(segments_);
    accel.set_backend(BackendKind::Functional);
    runs.push_back(accel.search_batch(reads_, 4, StrategyMode::Full, 2));
  }
  for (std::size_t i = 0; i < runs[0].size(); ++i)
    EXPECT_EQ(runs[1][i].decisions, runs[0][i].decisions) << "read " << i;
}

// ------------------------------------------------------ N == 1 identity --

TEST_F(ShardedTest, SingleShardBitIdenticalToMonolithicNoisy) {
  // The strongest contract: with one shard, the router must reproduce the
  // monolithic accelerator bit-for-bit on the noisy circuit path — same
  // silicon (same seed), same per-read streams, same ledger.
  const AsmcapConfig config = bank_config(4, /*ideal=*/false);
  ShardedAccelerator sharded(config, 1);
  AsmcapAccelerator mono(config);
  sharded.load_reference(segments_);
  mono.load_reference(segments_);
  EXPECT_EQ(sharded.load_energy_joules(), mono.load_energy_joules());
  EXPECT_EQ(sharded.load_latency_seconds(), mono.load_latency_seconds());

  const auto sharded_batch =
      sharded.search_batch(reads_, 4, StrategyMode::Full, 3);
  const auto mono_batch = mono.search_batch(reads_, 4, StrategyMode::Full, 3);
  ASSERT_EQ(sharded_batch.size(), mono_batch.size());
  for (std::size_t i = 0; i < mono_batch.size(); ++i) {
    EXPECT_EQ(sharded_batch[i].decisions, mono_batch[i].decisions);
    EXPECT_EQ(sharded_batch[i].matched_segments,
              mono_batch[i].matched_segments);
    EXPECT_EQ(sharded_batch[i].energy_joules, mono_batch[i].energy_joules);
    EXPECT_EQ(sharded_batch[i].latency_seconds, mono_batch[i].latency_seconds);
  }

  // Sequential searches after a batch evolve the same master stream.
  const QueryResult a = sharded.search(reads_[0], 4, StrategyMode::Full);
  const QueryResult b = mono.search(reads_[0], 4, StrategyMode::Full);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.energy_joules, b.energy_joules);

  EXPECT_EQ(sharded.totals().queries, mono.controller().totals().queries);
  EXPECT_EQ(sharded.totals().searches, mono.controller().totals().searches);
  EXPECT_EQ(sharded.totals().energy_joules,
            mono.controller().totals().energy_joules);
  EXPECT_EQ(sharded.totals().latency_seconds,
            mono.controller().totals().latency_seconds);
}

// ---------------------------------------------------------- re-basing ----

TEST_F(ShardedTest, GlobalIndexRebasingAtShardBoundaries) {
  // 10 segments over 3 shards partition as 4 + 3 + 3.
  std::vector<Sequence> segments(segments_.begin(), segments_.begin() + 10);
  ShardedAccelerator accel(bank_config(1), 3);
  accel.load_reference(segments);
  ASSERT_EQ(accel.shard_count(), 3u);
  EXPECT_EQ(accel.shard_base(0), 0u);
  EXPECT_EQ(accel.shard_base(1), 4u);
  EXPECT_EQ(accel.shard_base(2), 7u);
  EXPECT_EQ(accel.shard_segments(0), 4u);
  EXPECT_EQ(accel.shard_segments(1), 3u);
  EXPECT_EQ(accel.shard_segments(2), 3u);
  EXPECT_EQ(accel.loaded_segments(), 10u);
  EXPECT_EQ(accel.shard(1).loaded_segments(), 3u);

  // Exact copies of boundary rows must come back under their global ids:
  // the first row of shard 1 (local 0 -> global 4) and the last row of
  // shard 2 (local 2 -> global 9).
  for (const std::size_t global : {std::size_t{4}, std::size_t{9}}) {
    const QueryResult result =
        accel.search(segments[global], 0, StrategyMode::Baseline);
    ASSERT_EQ(result.decisions.size(), 10u);
    EXPECT_TRUE(result.decisions[global]) << "global " << global;
    EXPECT_NE(std::find(result.matched_segments.begin(),
                        result.matched_segments.end(), global),
              result.matched_segments.end());
  }
}

// ------------------------------------------------------------- ledger ----

TEST_F(ShardedTest, LedgerTotalsMatchMonolithicOnAlignedShards) {
  // 2 shards x 1 array x 16 rows vs one monolithic bank of 2 arrays: the
  // shard boundaries coincide with array boundaries, so the sharded
  // system scans exactly the same silicon geometry and the ledgers must
  // agree (energy up to floating-point summation order). Misaligned
  // boundaries would honestly charge extra partially-filled arrays —
  // each bank drives its search lines per pass whatever its fill.
  std::vector<Sequence> segments(segments_.begin(), segments_.begin() + 32);
  ShardedAccelerator sharded(bank_config(1), 2);
  AsmcapAccelerator mono(bank_config(2));
  sharded.load_reference(segments);
  mono.load_reference(segments);
  sharded.set_backend(BackendKind::Functional);
  mono.set_backend(BackendKind::Functional);

  const auto sharded_results =
      sharded.search_batch(reads_, 4, StrategyMode::Full, 2);
  const auto mono_results = mono.search_batch(reads_, 4, StrategyMode::Full, 2);
  for (std::size_t i = 0; i < mono_results.size(); ++i) {
    EXPECT_EQ(sharded_results[i].decisions, mono_results[i].decisions);
    EXPECT_EQ(sharded_results[i].latency_seconds,
              mono_results[i].latency_seconds);
    EXPECT_NEAR(sharded_results[i].energy_joules,
                mono_results[i].energy_joules,
                1e-9 * mono_results[i].energy_joules);
  }
  const ExecutionTotals& st = sharded.totals();
  const ExecutionTotals& mt = mono.controller().totals();
  EXPECT_EQ(st.queries, mt.queries);
  EXPECT_EQ(st.searches, mt.searches);
  EXPECT_EQ(st.hd_searches, mt.hd_searches);
  EXPECT_EQ(st.rotation_searches, mt.rotation_searches);
  EXPECT_DOUBLE_EQ(st.latency_seconds, mt.latency_seconds);
  EXPECT_NEAR(st.energy_joules, mt.energy_joules,
              1e-9 * mt.energy_joules);
}

// ----------------------------------------------------------- capacity ----

TEST_F(ShardedTest, ShardingExtendsCapacityPastOneBank) {
  // Bank capacity 2 x 16 = 32 < 40 segments: the monolithic accelerator
  // rejects the database, two shards hold it.
  AsmcapAccelerator mono(bank_config(2));
  EXPECT_THROW(mono.load_reference(segments_), DbError);

  ShardedAccelerator sharded(bank_config(2), 2);
  EXPECT_EQ(sharded.capacity_segments(), 64u);
  sharded.load_reference(segments_);
  EXPECT_EQ(sharded.loaded_segments(), 40u);
  const QueryResult result =
      sharded.search(segments_[35], 0, StrategyMode::Baseline);
  EXPECT_TRUE(result.decisions[35]);
}

TEST_F(ShardedTest, MoreShardsThanSegmentsPopulatesOnlyActiveBanks) {
  // A tiny database must not create empty banks (which could never
  // execute a query): 8 configured shards over 5 segments populate 5
  // one-segment banks, and decisions still match the single-shard run.
  std::vector<Sequence> segments(segments_.begin(), segments_.begin() + 5);
  ShardedAccelerator wide(bank_config(1), 8);
  ShardedAccelerator single(bank_config(1), 1);
  wide.load_reference(segments);
  single.load_reference(segments);
  EXPECT_EQ(wide.shard_count(), 8u);
  EXPECT_EQ(wide.active_shards(), 5u);
  EXPECT_EQ(wide.shard_segments(4), 1u);
  EXPECT_THROW(wide.shard(5), std::out_of_range);

  const auto wide_results = wide.search_batch(reads_, 4, StrategyMode::Full, 2);
  const auto single_results =
      single.search_batch(reads_, 4, StrategyMode::Full, 2);
  for (std::size_t i = 0; i < wide_results.size(); ++i)
    EXPECT_EQ(wide_results[i].decisions, single_results[i].decisions);
}

TEST_F(ShardedTest, AccessorsThrowBeforeLoad) {
  ShardedAccelerator accel(bank_config(2), 2);
  EXPECT_THROW(accel.active_shards(), std::logic_error);
  EXPECT_THROW(accel.shard(0), std::logic_error);
  EXPECT_THROW(accel.shard_base(0), std::logic_error);
  EXPECT_THROW(accel.shard_segments(0), std::logic_error);
}

TEST_F(ShardedTest, Validation) {
  EXPECT_THROW(ShardedAccelerator(bank_config(2), 0), std::invalid_argument);
  ShardedAccelerator accel(bank_config(2), 2);
  EXPECT_THROW(accel.search(reads_[0], 2, StrategyMode::Baseline),
               std::logic_error);
  EXPECT_THROW(accel.search_batch(reads_, 2, StrategyMode::Baseline, 2),
               std::logic_error);
  std::vector<Sequence> too_many(segments_);
  for (int i = 0; i < 30; ++i) too_many.push_back(segments_[0]);
  try {
    accel.load_reference(too_many);
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::CapacityExceeded);
  }
  accel.load_reference(segments_);
  EXPECT_THROW(accel.load_reference(segments_), std::logic_error);
  EXPECT_TRUE(accel.search_batch({}, 2, StrategyMode::Baseline, 2).empty());
  Rng rng(1203);
  EXPECT_THROW(accel.search(Sequence::random(32, rng), 2,
                            StrategyMode::Baseline),
               std::invalid_argument);
}

// ----------------------------------------------------------- read mapper --

TEST_F(ShardedTest, ShardedMapperMatchesSingleBankMapper) {
  std::vector<std::vector<MappedRead>> runs;
  std::vector<MappingStats> stats;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    ReadMapper mapper(bank_config(4), segments_, 64, shards);
    std::vector<MappedRead> mapped;
    stats.push_back(
        mapper.map_batch(reads_, 4, StrategyMode::Full, &mapped, 2));
    runs.push_back(std::move(mapped));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].mapped, runs[1][i].mapped);
    EXPECT_EQ(runs[0][i].segment, runs[1][i].segment);
    EXPECT_EQ(runs[0][i].edit_distance, runs[1][i].edit_distance);
    EXPECT_EQ(runs[0][i].candidates, runs[1][i].candidates);
  }
  EXPECT_EQ(stats[0].mapped, stats[1].mapped);
  EXPECT_EQ(stats[0].total_candidates, stats[1].total_candidates);
  EXPECT_EQ(stats[0].host_dp_cells, stats[1].host_dp_cells);
}

// ------------------------------------------------------ eval comparison --

TEST_F(ShardedTest, ShardedComparisonRunsOnMultiBankDatabase) {
  Dataset dataset;
  dataset.rows = segments_;
  dataset.rates = ErrorRates::condition_a();
  dataset.name = "sharded";
  Rng rng(1204);
  ReadSimConfig sim_config;
  sim_config.read_length = 64;
  sim_config.rates = dataset.rates;
  const ReadSimulator sim(reference_, sim_config);
  for (int i = 0; i < 16; ++i) {
    DatasetQuery query;
    query.true_row = rng.below(40);
    query.read = sim.simulate_at(query.true_row * 64, rng).read;
    dataset.queries.push_back(query);
  }

  ShardedComparisonConfig config;
  config.bank = bank_config(2);  // capacity 32 < 40 rows: needs 2 banks
  config.shards = 2;
  config.threshold = 4;
  config.workers = 2;
  config.kraken.k = 16;
  config.live_mutation = true;  // delete / re-insert a tail block mid-run
  config.live_block = 8;
  const ShardedComparisonResult result =
      run_sharded_comparison(config, dataset);
  EXPECT_EQ(result.segments, 40u);
  EXPECT_EQ(result.cm_asmcap.total(), 16u * 40u);
  EXPECT_GT(result.asmcap_f1, 0.8);
  EXPECT_GE(result.asmcap_f1, result.kraken_f1);
  EXPECT_GT(result.accel_energy_joules, 0.0);
  EXPECT_GT(result.cmcpu_seconds, 0.0);

  // Live-mutation arm: deleting a contamination block must not harm the
  // surviving rows' accuracy, no tombstoned row may ever match, and the
  // re-inserted rows must classify as well as they did before deletion.
  EXPECT_EQ(result.live_deleted, 8u);
  EXPECT_TRUE(result.live_dead_rows_silent);
  EXPECT_GT(result.live_f1_after_delete, 0.8);
  EXPECT_GE(result.live_f1_after_reinsert, result.asmcap_f1 - 1e-12);
  EXPECT_GT(result.live_final_epoch, 1u);

  // One bank cannot hold the dataset: the capacity check must fire.
  config.shards = 1;
  EXPECT_THROW(run_sharded_comparison(config, dataset), DbError);
}

TEST_F(ShardedTest, Fig7RunnerEnforcesShardedCapacity) {
  Dataset dataset;
  dataset.rows = segments_;
  dataset.rates = ErrorRates::condition_a();
  Fig7Config config;
  config.asmcap = bank_config(2);  // capacity 32 < 40 rows
  config.shards = 1;
  Rng rng(1205);
  EXPECT_THROW(Fig7Runner(config).run(dataset, {4}, rng), DbError);
}

}  // namespace
}  // namespace asmcap
