#include <gtest/gtest.h>

#include "cam/periphery.h"
#include "cam/shift_register.h"

namespace asmcap {
namespace {

TEST(ShiftRegister, LoadRotateRestore) {
  ShiftRegisterFile regs(8);
  const Sequence read = Sequence::from_string("ACGTTGCA");
  regs.load(read);
  EXPECT_TRUE(regs.loaded());
  EXPECT_EQ(regs.value(), read);
  regs.rotate_left();
  EXPECT_EQ(regs.value(), read.rotated_left(1));
  regs.rotate_left();
  EXPECT_EQ(regs.value(), read.rotated_left(2));
  EXPECT_EQ(regs.shift_cycles(), 2u);
  regs.restore();
  EXPECT_EQ(regs.value(), read);
  EXPECT_EQ(regs.shift_cycles(), 2u);  // restore is a reload, not a shift
  regs.rotate_right();
  EXPECT_EQ(regs.value(), read.rotated_right(1));
  EXPECT_EQ(regs.shift_cycles(), 3u);
}

TEST(ShiftRegister, Validation) {
  EXPECT_THROW(ShiftRegisterFile(0), std::invalid_argument);
  ShiftRegisterFile regs(4);
  EXPECT_THROW(regs.value(), std::logic_error);
  EXPECT_THROW(regs.rotate_left(), std::logic_error);
  EXPECT_THROW(regs.load(Sequence::from_string("ACGTA")),
               std::invalid_argument);
}

TEST(ShiftRegister, CycleReset) {
  ShiftRegisterFile regs(4);
  regs.load(Sequence::from_string("ACGT"));
  regs.rotate_left();
  regs.reset_cycles();
  EXPECT_EQ(regs.shift_cycles(), 0u);
}

TEST(RowDecoder, AddressBitsAndDecode) {
  const RowDecoder decoder(256);
  EXPECT_EQ(decoder.address_bits(), 8u);
  EXPECT_EQ(decoder.decode(0), 0u);
  EXPECT_EQ(decoder.decode(255), 255u);
  EXPECT_THROW(decoder.decode(256), std::out_of_range);
  const RowDecoder odd(100);
  EXPECT_EQ(odd.address_bits(), 7u);
  EXPECT_THROW(odd.decode(100), std::out_of_range);
  EXPECT_THROW(RowDecoder(0), std::invalid_argument);
}

TEST(SearchlineDriver, EnergyAccounting) {
  SearchlineDriver driver(16);
  const Sequence read = Sequence::from_string("ACGTACGTACGTACGT");
  const double per_drive = driver.drive(read);
  EXPECT_GT(per_drive, 0.0);
  driver.drive(read);
  EXPECT_DOUBLE_EQ(driver.consumed_energy(), 2.0 * per_drive);
  driver.reset_energy();
  EXPECT_EQ(driver.consumed_energy(), 0.0);
  EXPECT_THROW(driver.drive(Sequence::from_string("AC")),
               std::invalid_argument);
  EXPECT_THROW(SearchlineDriver(0), std::invalid_argument);
}

TEST(WritePath, EnergyScalesWithWidth) {
  EXPECT_GT(row_write_energy(256), row_write_energy(64));
  EXPECT_DOUBLE_EQ(row_write_energy(256), 4.0 * row_write_energy(64));
}

}  // namespace
}  // namespace asmcap
