#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace asmcap {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(50.0);  // clamped to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(SpanStats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(stddev_of(std::vector<double>{1.0}), 0.0);
}

TEST(SpanStats, Geomean) {
  const std::vector<double> xs{1.0, 10.0, 100.0};
  EXPECT_NEAR(geomean_of(xs), 10.0, 1e-9);
  const std::vector<double> bad{1.0, -1.0};
  EXPECT_THROW(geomean_of(bad), std::invalid_argument);
}

TEST(SpanStats, Correlation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, zs), -1.0, 1e-12);
  const std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_EQ(correlation(xs, flat), 0.0);
}

TEST(SpanStats, CorrelationSizeMismatchThrows) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_THROW(correlation(xs, ys), std::invalid_argument);
}

}  // namespace
}  // namespace asmcap
