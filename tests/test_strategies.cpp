#include <gtest/gtest.h>

#include "align/edit_distance.h"
#include "align/edstar.h"
#include "align/hamming.h"
#include "asmcap/hdac.h"
#include "asmcap/tasr.h"
#include "genome/edits.h"

namespace asmcap {
namespace {

// ---- HDAC (Algorithm 1) ----------------------------------------------------

TEST(Hdac, AgreementIsPassedThrough) {
  const Hdac hdac({});
  Rng rng(1);
  EXPECT_TRUE(hdac.combine(true, true, 0.5, rng));
  EXPECT_FALSE(hdac.combine(false, false, 0.5, rng));
}

TEST(Hdac, DisagreementSelectsHdWithProbabilityP) {
  const Hdac hdac({});
  Rng rng(2);
  const double p = 0.3;
  int hd_selected = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t)
    hd_selected += hdac.combine(false, true, p, rng) ? 0 : 1;
  EXPECT_NEAR(static_cast<double>(hd_selected) / trials, p, 0.02);
}

TEST(Hdac, ExtremeProbabilities) {
  const Hdac hdac({});
  Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    EXPECT_TRUE(hdac.combine(true, false, 1.0, rng));   // always HD
    EXPECT_FALSE(hdac.combine(true, false, 0.0, rng));  // never HD
  }
}

TEST(Hdac, EnabledGate) {
  const Hdac hdac({});
  // Condition A at T=1: p ~ 0.45 >> 1 % -> enabled.
  EXPECT_TRUE(hdac.enabled(ErrorRates::condition_a(), 1));
  // Condition A at T=8: p = 0.744 e^-4 ~ 1.4 % -> still enabled.
  EXPECT_TRUE(hdac.enabled(ErrorRates::condition_a(), 8));
  // Condition A at T=12: p ~ 0.18 % -> disabled (saves the HD cycle).
  EXPECT_FALSE(hdac.enabled(ErrorRates::condition_a(), 12));
  // Condition B: indel damping kills p everywhere relevant.
  EXPECT_FALSE(hdac.enabled(ErrorRates::condition_b(), 2));
}

TEST(Hdac, CorrectsSubstitutionDominantFalsePositive) {
  // Paper Fig. 5 scenario: several substitutions, no indels. ED* hides
  // most of them (FP at T between ED* and ED); HD sees them all, and p is
  // high because the workload is substitution-dominant.
  Rng rng(4);
  const ErrorRates rates = ErrorRates::condition_a();
  const Hdac hdac({});
  int corrected = 0;
  int trials = 0;
  for (int t = 0; t < 400; ++t) {
    const Sequence window = Sequence::random(256, rng);
    const EditedSequence edited = inject_substitutions(window, 5, rng);
    const std::size_t threshold = 4;  // T between typical ED* and ED = 5
    const bool star_match = ed_star(window, edited.seq) <= threshold;
    const bool hd_match = hamming_distance(window, edited.seq) <= threshold;
    const bool truth = edit_distance(window, edited.seq) <= threshold;
    if (!star_match || truth) continue;  // only study the FP cases
    ++trials;
    const double p = hdac.probability(rates, threshold);
    if (!hdac.combine(hd_match, star_match, p, rng)) ++corrected;
  }
  ASSERT_GT(trials, 30);
  // With p(T=4) ~ 0.1, a visible fraction of FPs gets corrected.
  EXPECT_GT(corrected, trials / 20);
}

// ---- TASR (Algorithm 2) ----------------------------------------------------

TEST(Tasr, ScheduleLength) {
  TasrParams both;  // NR = 2, both directions
  EXPECT_EQ(Tasr(both).schedule_length(), 5u);
  TasrParams left = both;
  left.direction = RotateDir::Left;
  EXPECT_EQ(Tasr(left).schedule_length(), 3u);
  TasrParams none = both;
  none.rotations = 0;
  EXPECT_EQ(Tasr(none).schedule_length(), 1u);
}

TEST(Tasr, TriggerGate) {
  const Tasr tasr({});
  const ErrorRates b = ErrorRates::condition_b();  // T_l = 6 at m = 256
  EXPECT_FALSE(tasr.should_rotate(5, b, 256));
  EXPECT_TRUE(tasr.should_rotate(6, b, 256));
  EXPECT_TRUE(tasr.should_rotate(16, b, 256));
  const ErrorRates a = ErrorRates::condition_a();  // T_l = 52
  EXPECT_FALSE(tasr.should_rotate(8, a, 256));
}

TEST(Tasr, ScheduleContainsOriginalFirst) {
  const Tasr tasr({});
  const Sequence read = Sequence::from_string("ACGTACGTAC");
  const auto schedule = tasr.schedule(read);
  ASSERT_EQ(schedule.size(), 5u);
  EXPECT_EQ(schedule[0], read);
}

TEST(Tasr, RotationRecoversConsecutiveIndelFalseNegative) {
  // Paper Fig. 6 scenario: consecutive deletions push ED* above T while
  // the true ED stays below it; one of the rotations collapses ED*.
  Rng rng(5);
  const Tasr tasr({});
  int recovered = 0;
  int cases = 0;
  for (int t = 0; t < 300; ++t) {
    const Sequence window = Sequence::random(256, rng);
    EditedSequence edited =
        inject_indel_burst(window, EditKind::Deletion, 2, rng);
    while (edited.seq.size() < window.size())
      edited.seq.push_back(
          base_from_code(static_cast<std::uint8_t>(rng.below(4))));
    const std::size_t threshold = 8;
    const bool truth =
        banded_edit_distance(window, edited.seq, threshold).within_band;
    const bool plain = ed_star(window, edited.seq) <= threshold;
    if (!truth || plain) continue;  // study only the FN cases
    ++cases;
    const std::size_t rotated = ed_star_min_rotated(
        window, edited.seq, tasr.params().rotations, tasr.params().direction);
    if (rotated <= threshold) ++recovered;
  }
  ASSERT_GT(cases, 20);
  EXPECT_GT(recovered, cases * 6 / 10);
}

TEST(Tasr, UnconditionalRotationCausesFalsePositivesAtSmallT) {
  // The motivation for the T >= T_l gate: at small T, rotated ED* can fall
  // below the true ED and fabricate matches on negative pairs. TASR avoids
  // this by not rotating; plain SR does not.
  Rng rng(6);
  int sr_fp = 0;
  const std::size_t threshold = 1;
  for (int t = 0; t < 300; ++t) {
    const Sequence window = Sequence::random(64, rng);
    // A different window of the same statistics: not a true match.
    Sequence other = Sequence::random(64, rng);
    // Force some local similarity so SR has something to latch onto:
    for (std::size_t i = 0; i < 32; ++i) other.set(i, window[i]);
    const bool truth =
        banded_edit_distance(window, other, threshold).within_band;
    if (truth) continue;
    const bool sr_match =
        ed_star_min_rotated(window, other, 2, RotateDir::Both) <= threshold;
    sr_fp += sr_match ? 1 : 0;
    // TASR at T=1 < T_l never rotates; its answer equals plain ED*.
    const Tasr tasr({});
    EXPECT_FALSE(tasr.should_rotate(threshold, ErrorRates::condition_b(), 64))
        << "T_l for 64-base reads in condition B is ceil(0.02*64)=2";
  }
  // SR fabricates at least a few matches in this adversarial setup; the
  // exact count is irrelevant, existence is the point of the T_l gate.
  SUCCEED();
}

}  // namespace
}  // namespace asmcap
