// Streaming FASTA/FASTQ reader (genome/stream_reader.h) and the ingestion
// pipeline built on it (asmcap/ingest.h): parity with the whole-file
// readers, chunked reassembly identity, malformed-input line numbers, and
// the CLI-path bit-identity gate — streamed ingest + service pump decides
// exactly like load_reference + search_batch.

#include "genome/stream_reader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifdef ASMCAP_HAVE_ZLIB
#include <zlib.h>
#endif

#include "asmcap/ingest.h"
#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/fasta.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/rng.h"

namespace asmcap {
namespace {

std::vector<SeqRecord> stream_all(const std::string& text) {
  std::istringstream in(text);
  SeqStreamReader reader(in);
  std::vector<SeqRecord> records;
  SeqRecord record;
  while (reader.next(record)) records.push_back(record);
  return records;
}

/// Deterministic multi-record FASTA content with injected 'N's.
std::vector<FastaRecord> sample_fasta_records() {
  Rng rng(0x5EED);
  std::vector<FastaRecord> records(3);
  records[0].id = "chr1";
  records[0].comment = "first synthetic record";
  records[0].seq = generate_reference(301, {}, rng);  // Wraps unevenly.
  records[1].id = "chr2";
  records[1].seq = generate_reference(64, {}, rng);
  records[2].id = "chr3";
  records[2].comment = "tail";
  records[2].seq = generate_reference(17, {}, rng);
  return records;
}

TEST(StreamReader, FastaParityWithWholeFileReader) {
  const auto records = sample_fasta_records();
  std::ostringstream image;
  write_fasta(image, records, 60);
  // Inject ambiguity: replace a base with 'N' in the serialised form so
  // both readers see the same bytes.
  std::string text = image.str();
  const std::size_t base_pos = text.find('\n') + 3;
  text[base_pos] = 'N';

  std::istringstream whole_in(text);
  std::size_t whole_ambiguous = 0;
  const auto whole = read_fasta(whole_in, &whole_ambiguous);

  std::istringstream stream_in(text);
  SeqStreamReader reader(stream_in, "parity.fa");
  std::vector<SeqRecord> streamed;
  SeqRecord record;
  while (reader.next(record)) streamed.push_back(record);

  EXPECT_EQ(reader.format(), SeqFormat::Fasta);
  ASSERT_EQ(streamed.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(streamed[i].id, whole[i].id);
    EXPECT_EQ(streamed[i].comment, whole[i].comment);
    EXPECT_EQ(streamed[i].seq.to_string(), whole[i].seq.to_string());
    EXPECT_TRUE(streamed[i].quality.empty());
  }
  EXPECT_EQ(reader.ambiguous_bases(), whole_ambiguous);
  EXPECT_EQ(reader.records(), whole.size());
}

TEST(StreamReader, FastqParityWithWholeFileReader) {
  Rng rng(0xFA57);
  std::vector<FastqRecord> records(4);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].id = "read" + std::to_string(i);
    records[i].seq = Sequence::random(48, rng);
    records[i].quality = std::string(48, static_cast<char>('!' + i));
  }
  std::ostringstream image;
  write_fastq(image, records);
  std::string text = image.str();
  // An 'N' in a sequence line: both readers resolve it to 'A'.
  const std::size_t seq_pos = text.find('\n') + 5;
  text[seq_pos] = 'N';

  std::istringstream whole_in(text);
  const auto whole = read_fastq(whole_in);

  std::istringstream stream_in(text);
  SeqStreamReader reader(stream_in, "parity.fq");
  std::vector<SeqRecord> streamed;
  SeqRecord record;
  while (reader.next(record)) streamed.push_back(record);

  EXPECT_EQ(reader.format(), SeqFormat::Fastq);
  ASSERT_EQ(streamed.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(streamed[i].id, whole[i].id);
    EXPECT_EQ(streamed[i].seq.to_string(), whole[i].seq.to_string());
    EXPECT_EQ(streamed[i].quality, whole[i].quality);
  }
  EXPECT_EQ(reader.ambiguous_bases(), 1u);
}

TEST(StreamReader, ChunkedReassemblyIsIdentical) {
  const auto records = sample_fasta_records();
  std::ostringstream image;
  write_fasta(image, records, 13);  // Awkward wrap width.
  const std::string text = image.str();

  const std::vector<SeqRecord> whole = stream_all(text);
  for (const std::size_t chunk : {1u, 2u, 7u, 100u}) {
    std::istringstream in(text);
    SeqStreamReader reader(in);
    std::vector<SeqRecord> reassembled;
    for (;;) {
      std::vector<SeqRecord> block = reader.read_chunk(chunk);
      if (block.empty()) break;
      for (SeqRecord& record : block)
        reassembled.push_back(std::move(record));
    }
    ASSERT_EQ(reassembled.size(), whole.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < whole.size(); ++i) {
      EXPECT_EQ(reassembled[i].id, whole[i].id);
      EXPECT_EQ(reassembled[i].seq.to_string(), whole[i].seq.to_string());
    }
  }
}

TEST(StreamReader, ToleratesCrlfAndBlankLines) {
  const std::string text =
      ">a first\r\nACGT\r\nAC\r\n\r\n>b\r\n\r\nGGTT\r\n";
  const auto records = stream_all(text);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "a");
  EXPECT_EQ(records[0].comment, "first");
  EXPECT_EQ(records[0].seq.to_string(), "ACGTAC");
  EXPECT_EQ(records[1].id, "b");
  EXPECT_EQ(records[1].seq.to_string(), "GGTT");

  const std::string fastq = "@r1 x\r\nACGT\r\n+\r\nIIII\r\n";
  const auto reads = stream_all(fastq);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].id, "r1");
  EXPECT_EQ(reads[0].comment, "x");
  EXPECT_EQ(reads[0].seq.to_string(), "ACGT");
  EXPECT_EQ(reads[0].quality, "IIII");
}

TEST(StreamReader, EmptyRecordYieldsEmptySequence) {
  const auto records = stream_all(">a\n>b\nACGT\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "a");
  EXPECT_TRUE(records[0].seq.empty());
  EXPECT_EQ(records[1].seq.to_string(), "ACGT");
}

TEST(StreamReader, UnknownLeadingByteFailsWithLineNumber) {
  std::istringstream in("\n\nACGT\n");
  SeqStreamReader reader(in, "bad.txt");
  SeqRecord record;
  try {
    reader.next(record);
    FAIL() << "expected StreamParseError";
  } catch (const StreamParseError& e) {
    EXPECT_EQ(e.line(), 3u);  // First non-blank line.
    EXPECT_NE(std::string(e.what()).find("bad.txt:3"), std::string::npos);
  }
}

TEST(StreamReader, TruncatedFastqFailsWithLineNumber) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nACGT\n");
  SeqStreamReader reader(in, "trunc.fq");
  SeqRecord record;
  ASSERT_TRUE(reader.next(record));
  try {
    reader.next(record);
    FAIL() << "expected StreamParseError";
  } catch (const StreamParseError& e) {
    EXPECT_EQ(e.line(), 6u);  // Input ended at line 6.
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos);
  }
}

TEST(StreamReader, FastqSeparatorAndQualityErrors) {
  {
    std::istringstream in("@r1\nACGT\nIIII\nACGT\n");
    SeqStreamReader reader(in);
    SeqRecord record;
    EXPECT_THROW(reader.next(record), StreamParseError);
  }
  {
    std::istringstream in("@r1\nACGT\n+\nIII\n");
    SeqStreamReader reader(in);
    SeqRecord record;
    try {
      reader.next(record);
      FAIL() << "expected StreamParseError";
    } catch (const StreamParseError& e) {
      EXPECT_EQ(e.line(), 4u);
      EXPECT_NE(std::string(e.what()).find("quality length"),
                std::string::npos);
    }
  }
}

TEST(StreamReader, FastaSequenceBeforeHeaderMatchesWholeFileError) {
  // The whole-file reader throws "FASTA: sequence data before any header"
  // only when the format is already known to be FASTA; the streaming
  // reader's format detection rejects the same input up front.
  std::istringstream in("ACGT\n>late\nAC\n");
  SeqStreamReader reader(in);
  SeqRecord record;
  EXPECT_THROW(reader.next(record), StreamParseError);
}

TEST(StreamReader, CountsLinesAcrossBufferRefills) {
  // A record body far larger than one 64 KiB buffer refill: line
  // accounting and content must both survive the boundary.
  Rng rng(0xB16);
  const Sequence big = generate_reference(200'000, {}, rng);
  std::vector<FastaRecord> records(1);
  records[0].id = "big";
  records[0].seq = big;
  std::ostringstream image;
  write_fasta(image, records, 80);
  const auto streamed = stream_all(image.str());
  ASSERT_EQ(streamed.size(), 1u);
  EXPECT_EQ(streamed[0].seq.to_string(), big.to_string());
}

TEST(StreamReader, RejectsMissingFile) {
  EXPECT_THROW(SeqStreamReader("/nonexistent/no-such-file.fa"),
               std::runtime_error);
}

TEST(StreamReader, ReadsPlainFileByPath) {
  const std::string path = testing::TempDir() + "stream_reader_plain.fa";
  {
    std::ofstream out(path);
    out << ">p one\nACGT\nGG\n";
  }
  SeqStreamReader reader(path);
  SeqRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.id, "p");
  EXPECT_EQ(record.seq.to_string(), "ACGTGG");
  EXPECT_FALSE(reader.next(record));
  std::remove(path.c_str());
}

#ifdef ASMCAP_HAVE_ZLIB
TEST(StreamReader, GzipRoundTripByMagicDetection) {
  const auto records = sample_fasta_records();
  std::ostringstream image;
  write_fasta(image, records, 42);
  const std::string text = image.str();

  const std::string path = testing::TempDir() + "stream_reader_test.fa.gz";
  gzFile gz = gzopen(path.c_str(), "wb");
  ASSERT_NE(gz, nullptr);
  ASSERT_EQ(gzwrite(gz, text.data(), static_cast<unsigned>(text.size())),
            static_cast<int>(text.size()));
  gzclose(gz);

  SeqStreamReader reader(path);  // gzip auto-detected from magic bytes.
  std::vector<SeqRecord> streamed;
  SeqRecord record;
  while (reader.next(record)) streamed.push_back(record);
  ASSERT_EQ(streamed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(streamed[i].id, records[i].id);
    EXPECT_EQ(streamed[i].seq.to_string(), records[i].seq.to_string());
  }
  std::remove(path.c_str());
}
#endif

// ---------------------------------------------------------------- ingest --

TEST(Ingest, TilesRecordsAndIndexesOrigins) {
  AsmcapConfig config;
  config.array_rows = 8;
  config.array_cols = 16;
  config.array_count = 4;
  config.ideal_sensing = true;
  ShardedAccelerator db(config, 2);

  // chrA: 2 full tiles + 5-base tail (padded); chrB: exactly 1 tile.
  Rng rng(0x716E);
  std::vector<FastaRecord> records(2);
  records[0].id = "chrA";
  records[0].seq = generate_reference(37, {}, rng);
  records[1].id = "chrB";
  records[1].seq = generate_reference(16, {}, rng);
  std::ostringstream image;
  write_fasta(image, records, 70);

  std::istringstream in(image.str());
  SeqStreamReader reader(in, "index.fa");
  ReferenceIndex index;
  IngestOptions options;
  options.append_batch = 2;  // Force multiple append calls.
  const IngestStats stats = ingest_reference(db, reader, options, &index);

  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.segments, 4u);
  EXPECT_EQ(stats.padded_segments, 1u);
  EXPECT_EQ(stats.bases, 53u);
  EXPECT_EQ(db.live_segment_count(), 4u);

  ASSERT_EQ(index.size(), 4u);
  const std::uint64_t first = index.first_id();
  EXPECT_EQ(index.label(first), "chrA:0");
  EXPECT_EQ(index.label(first + 1), "chrA:16");
  EXPECT_EQ(index.label(first + 2), "chrA:32");  // The padded tail tile.
  EXPECT_EQ(index.label(first + 3), "chrB:0");
  EXPECT_EQ(index.origin(first + 3).record, 1u);
  EXPECT_EQ(index.origin(first + 3).offset, 0u);
  EXPECT_FALSE(index.contains(first + 4));
  EXPECT_EQ(index.label(first + 4), "segment:" + std::to_string(first + 4));
  EXPECT_THROW(index.origin(first + 4), std::out_of_range);

  // Padded tail content: original bases then 'A' padding.
  const auto live = db.live_segments();
  ASSERT_EQ(live.size(), 4u);
  const std::string tail = live[2].second.to_string();
  EXPECT_EQ(tail.substr(0, 5), records[0].seq.to_string().substr(32));
  EXPECT_EQ(tail.substr(5), std::string(11, 'A'));
}

TEST(Ingest, DropTailPolicyCounts) {
  AsmcapConfig config;
  config.array_rows = 8;
  config.array_cols = 16;
  config.array_count = 4;
  ShardedAccelerator db(config, 1);

  std::istringstream in(">only\nACGTACGTACGTACGTACG\n");  // 16 + 3 bases.
  SeqStreamReader reader(in);
  IngestOptions options;
  options.pad_final_tile = false;
  const IngestStats stats = ingest_reference(db, reader, options, nullptr);
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.padded_segments, 0u);
  EXPECT_EQ(stats.dropped_tail_bases, 3u);
}

// The acceptance gate: a database built by streamed ingestion decides
// bit-identically to load_reference of the same tiles, and the CLI-style
// service pump (chunked submits, in-order streaming callbacks) delivers
// decisions bit-identical to search_batch.
TEST(Ingest, ServiceIngestionBitIdentical) {
  const std::size_t width = 64;
  const std::size_t tiles = 24;
  const std::size_t n_reads = 20;
  const std::size_t threshold = 6;

  AsmcapConfig config;
  config.array_rows = 8;
  config.array_cols = width;
  config.array_count = 4;
  config.ideal_sensing = true;
  const std::size_t shards = 2;

  Rng rng(0xB17);
  Sequence reference = generate_reference(width * tiles, {}, rng);
  const std::vector<Sequence> tile_seqs = segment_reference(reference, width);
  ASSERT_EQ(tile_seqs.size(), tiles);

  ReadSimConfig sim_config;
  sim_config.read_length = width;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator simulator(reference, sim_config);
  std::vector<Sequence> reads;
  for (std::size_t i = 0; i < n_reads; ++i)
    reads.push_back(
        simulator.simulate_at(rng.below(tiles - 1) * width, rng).read);

  // Reference arm: in-memory tiles, synchronous batch.
  ShardedAccelerator frozen(config, shards);
  frozen.load_reference(tile_seqs);
  const std::vector<QueryResult> expected =
      frozen.search_batch(reads, threshold, StrategyMode::Full, 2);

  // CLI arm: serialise to FASTA bytes, stream-ingest, chunked service
  // pump with in-order callbacks and released results.
  std::vector<FastaRecord> fasta(1);
  fasta[0].id = "ref";
  fasta[0].seq = reference;
  std::ostringstream image;
  write_fasta(image, fasta, 61);
  std::istringstream fasta_in(image.str());
  SeqStreamReader reader(fasta_in, "ref.fa");

  ShardedAccelerator grown(config, shards);
  ReferenceIndex index;
  const IngestStats stats = ingest_reference(grown, reader, {}, &index);
  ASSERT_EQ(stats.segments, tiles);
  ASSERT_EQ(stats.padded_segments, 0u);

  SearchService service(grown);
  std::vector<std::vector<bool>> decisions(n_reads);
  std::size_t delivered = 0;
  const std::size_t chunk = 7;  // Deliberately not a divisor of n_reads.
  for (std::size_t start = 0; start < n_reads; start += chunk) {
    const std::size_t end = std::min(start + chunk, n_reads);
    ServiceOptions options;
    options.workers = 2;
    options.max_in_flight = 3;
    options.in_order = true;
    options.keep_results = false;
    options.on_complete = [&, start](std::size_t i,
                                     const QueryResult& result) {
      decisions[start + i] = result.decisions;
      ++delivered;
    };
    auto ticket = service.submit(
        std::vector<Sequence>(reads.begin() + start, reads.begin() + end),
        threshold, StrategyMode::Full, options);
    ticket->wait();
  }

  EXPECT_EQ(delivered, n_reads);
  for (std::size_t i = 0; i < n_reads; ++i) {
    EXPECT_EQ(decisions[i], expected[i].decisions) << "read " << i;
    // Matched ids resolve through the index to the ingested record.
    for (std::size_t id = 0; id < decisions[i].size(); ++id)
      if (decisions[i][id])
        EXPECT_EQ(index.label(id).rfind("ref:", 0), 0u);
  }
}

}  // namespace
}  // namespace asmcap
