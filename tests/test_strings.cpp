#include "util/strings.h"

#include <gtest/gtest.h>

namespace asmcap {
namespace {

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("AcGt", "ACGT"));
  EXPECT_FALSE(iequals("ACG", "ACGT"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("bench_fig7", "bench_"));
  EXPECT_FALSE(starts_with("x", "xy"));
  EXPECT_TRUE(ends_with("file.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", ".csv"));
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("AcGt"), "acgt");
  EXPECT_EQ(to_upper("acgt"), "ACGT");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int(" -7 ").value(), -7);
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("1e-3").value(), 1e-3);
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace asmcap
