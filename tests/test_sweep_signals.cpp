#include "eval/sweep.h"

#include <gtest/gtest.h>

#include "align/edit_distance.h"
#include "align/edstar.h"
#include "align/hamming.h"

namespace asmcap {
namespace {

class SignalsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1201);
    DatasetConfig config = condition_a_config(12, 20);
    config.segment_length = 96;
    dataset_ = build_dataset(config, rng);
    asmcap_config_.array_rows = 12;
    asmcap_config_.array_cols = 96;
  }
  Dataset dataset_;
  AsmcapConfig asmcap_config_;
  CurrentDomainParams edam_params_;
};

TEST_F(SignalsTest, DimensionsAndAccess) {
  Rng rng(1202);
  const DatasetSignals signals(dataset_, asmcap_config_, edam_params_, 8, rng);
  EXPECT_EQ(signals.queries(), 20u);
  EXPECT_EQ(signals.rows(), 12u);
  EXPECT_EQ(signals.ed_cap(), 8u);
  EXPECT_THROW(signals.pair(20, 0), std::out_of_range);
  EXPECT_THROW(signals.pair(0, 12), std::out_of_range);
  EXPECT_THROW(signals.truth(0, 0, 9), std::invalid_argument);
}

TEST_F(SignalsTest, SignalsMatchKernels) {
  Rng rng(1203);
  const DatasetSignals signals(dataset_, asmcap_config_, edam_params_, 8, rng);
  for (std::size_t q = 0; q < signals.queries(); ++q) {
    for (std::size_t r = 0; r < signals.rows(); ++r) {
      const PairSignals& pair = signals.pair(q, r);
      const Sequence& read = dataset_.queries[q].read;
      const Sequence& row = dataset_.rows[r];
      EXPECT_EQ(pair.hd, hamming_distance(row, read));
      EXPECT_EQ(pair.ed_star, ed_star(row, read));
      const CappedDistance exact = banded_edit_distance(row, read, 8);
      EXPECT_EQ(pair.ed, exact.distance);
      EXPECT_EQ(signals.truth(q, r, 8), exact.within_band);
    }
  }
}

TEST_F(SignalsTest, VoltagesTrackCounts) {
  Rng rng(1204);
  const DatasetSignals signals(dataset_, asmcap_config_, edam_params_, 8, rng);
  for (std::size_t q = 0; q < 5; ++q) {
    for (std::size_t r = 0; r < signals.rows(); ++r) {
      const PairSignals& pair = signals.pair(q, r);
      // Charge-domain V_ML ~ count/N * VDD (mismatch + offset small).
      const double ideal_star =
          static_cast<double>(pair.ed_star) / 96.0 * 1.2;
      EXPECT_NEAR(pair.vml_ed_star, ideal_star, 0.02);
      const double ideal_hd = static_cast<double>(pair.hd) / 96.0 * 1.2;
      EXPECT_NEAR(pair.vml_hd, ideal_hd, 0.02);
      // EDAM nominal drop ~ count * volts_per_count.
      const double vpc = 1.2 / 96.0 * (0.86e-6 / 0.86e-6);
      EXPECT_NEAR(pair.edam_drop,
                  static_cast<double>(pair.ed_star) * 1.2 / 96.0,
                  0.05 * (pair.ed_star + 1) * vpc + 0.02);
    }
  }
}

TEST_F(SignalsTest, RotationSignalsPresent) {
  Rng rng(1205);
  const DatasetSignals signals(dataset_, asmcap_config_, edam_params_, 8, rng);
  // Both directions x N_R = 2 rotations = 4 rotated variants.
  const PairSignals& pair = signals.pair(0, 0);
  EXPECT_EQ(pair.rot_ed_star.size(), 4u);
  EXPECT_EQ(pair.rot_vml.size(), 4u);
  EXPECT_EQ(pair.rot_edam_drop.size(), 4u);
  // Rotated counts match the kernel on the rotated reads.
  const auto schedule = rotation_schedule(dataset_.queries[0].read, 2,
                                          RotateDir::Both);
  for (std::size_t k = 1; k < schedule.size(); ++k)
    EXPECT_EQ(pair.rot_ed_star[k - 1],
              ed_star(dataset_.rows[0], schedule[k]));
}

TEST_F(SignalsTest, TruthRowForOwnQuery) {
  Rng rng(1206);
  const DatasetSignals signals(dataset_, asmcap_config_, edam_params_, 8, rng);
  // Non-contaminant queries must be within the cap of their true row.
  for (std::size_t q = 0; q < signals.queries(); ++q) {
    const std::size_t true_row = dataset_.queries[q].true_row;
    if (true_row >= signals.rows()) continue;  // contaminant
    EXPECT_LE(signals.pair(q, true_row).ed, 8u)
        << "query " << q << " should be close to its own row";
  }
}

}  // namespace
}  // namespace asmcap
