#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace asmcap {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, BuildsRows) {
  Table t({"a", "b"});
  t.new_row().add_cell("x").add_cell(1);
  t.new_row().add_cell(2.5, 2).add_cell(std::size_t{7});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_EQ(t.cell(1, 0), "2.5");
  EXPECT_EQ(t.cell(1, 1), "7");
}

TEST(Table, OverfullRowThrows) {
  Table t({"only"});
  t.new_row().add_cell("one");
  EXPECT_THROW(t.add_cell("two"), std::logic_error);
}

TEST(Table, AddRowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"just one"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, TextRenderingAligned) {
  Table t({"name", "v"});
  t.add_row({"long-name", "1"});
  t.add_row({"x", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  // All lines equal length (aligned).
  std::istringstream in(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, CsvEscaping) {
  Table t({"a"});
  t.add_row({"plain"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(FormatRatio, Styles) {
  EXPECT_EQ(format_ratio(1.4), "1.4x");
  EXPECT_EQ(format_ratio(61.0), "61x");
  EXPECT_EQ(format_ratio(8700.0), "8.7e+03x");
  EXPECT_EQ(format_ratio(2.0e6), "2.0e+06x");
}

TEST(FormatSi, Prefixes) {
  EXPECT_EQ(format_si(1.58e-6, "m^2"), "1.58um^2");
  EXPECT_EQ(format_si(0.9e-9, "s"), "900ps");  // strict SI prefixing
  EXPECT_EQ(format_si(7.67e-3, "W"), "7.67mW");
  EXPECT_EQ(format_si(2e-15, "F"), "2fF");
  EXPECT_EQ(format_si(1.2, "V"), "1.2V");
  EXPECT_EQ(format_si(64e6, "b"), "64Mb");
}

}  // namespace
}  // namespace asmcap
