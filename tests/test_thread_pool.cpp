#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace asmcap {
namespace {

TEST(ThreadPool, InlineWhenSingleWorker) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  std::vector<int> out(100, 0);
  pool.parallel_for(out.size(),
                    [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, AllIndicesRunExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::size_t> out(64, 0);
    pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i + 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}),
              64u * 65u / 2u);
  }
}

TEST(ThreadPool, EmptyAndSingleCounts) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, HardwareWorkersAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

}  // namespace
}  // namespace asmcap
