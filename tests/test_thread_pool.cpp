#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace asmcap {
namespace {

TEST(ThreadPool, InlineWhenSingleWorker) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  std::vector<int> out(100, 0);
  pool.parallel_for(out.size(),
                    [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, AllIndicesRunExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::size_t> out(64, 0);
    pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i + 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}),
              64u * 65u / 2u);
  }
}

TEST(ThreadPool, EmptyAndSingleCounts) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, HardwareWorkersAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

// --------------------------------------------- detached tasks + TaskGroup --

TEST(ThreadPool, SubmitRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  TaskGroup group;
  std::vector<std::atomic<int>> hits(200);
  group.start(hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i)
    pool.submit([&, i] {
      ++hits[i];
      group.finish();
    });
  group.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(ThreadPool, SubmitRunsInlineOnThreadlessPool) {
  // workers == 1 spawns no threads: the task must complete before
  // submit() returns (deterministic synchronous degradation).
  ThreadPool pool(1);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, TaskChainsUseConstantStackOnThreadlessPool) {
  // Tasks submitting tasks (the service admission ladder) must trampoline,
  // not recurse: 100k chained tasks would overflow the stack otherwise.
  ThreadPool pool(1);
  TaskGroup group;
  std::size_t count = 0;
  std::function<void()> step = [&] {
    if (++count < 100000) {
      group.start(1);
      pool.submit(step);
    }
    group.finish();
  };
  group.start(1);
  pool.submit(step);
  group.wait();
  EXPECT_EQ(count, 100000u);
}

TEST(ThreadPool, TasksMaySubmitTasksAcrossThreads) {
  ThreadPool pool(3);
  TaskGroup group;
  std::atomic<int> total{0};
  group.start(8);
  for (int i = 0; i < 8; ++i)
    pool.submit([&] {
      group.start(4);
      for (int j = 0; j < 4; ++j)
        pool.submit([&] {
          ++total;
          group.finish();
        });
      ++total;
      group.finish();
    });
  group.wait();
  EXPECT_EQ(total.load(), 8 * 5);
}

TEST(ThreadPool, SubmitInterleavesWithParallelFor) {
  ThreadPool pool(4);
  TaskGroup group;
  std::atomic<int> async_done{0};
  group.start(16);
  for (int i = 0; i < 16; ++i)
    pool.submit([&] {
      ++async_done;
      group.finish();
    });
  std::vector<std::size_t> out(64, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i + 1; });
  group.wait();
  EXPECT_EQ(async_done.load(), 16);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}),
            64u * 65u / 2u);
}

TEST(ThreadPool, InlineTrampolineSurvivesThrowingTask) {
  // On a threadless pool a throwing task propagates out of the draining
  // submit(), and the pool must stay usable (the drain flag resets).
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit([] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, DestructorDrainsAbandonedInlineTasks) {
  // A task queued behind a thrower is abandoned by the trampoline but
  // must still run by destruction time (the drain contract).
  bool ran = false;
  {
    ThreadPool pool(1);
    try {
      pool.submit([&] {
        pool.submit([&] { ran = true; });
        throw std::runtime_error("boom");
      });
    } catch (const std::runtime_error&) {
    }
    EXPECT_FALSE(ran);
  }
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) pool.submit([&] { ++ran; });
    // No wait: the destructor must finish every queued task before join.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, HighPriorityTasksOvertakeQueuedLowerClasses) {
  // One spawned worker (pool of 2) drains the queue sequentially, so the
  // observed execution order IS the pop order. Block it with a gate task,
  // enqueue Low, Normal, and High work interleaved, then release: every
  // High task must run before every Normal, every Normal before every
  // Low, and order within a class must stay FIFO.
  ThreadPool pool(2);
  TaskGroup group;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  group.start();
  pool.submit([opened, &group] {
    opened.wait();
    group.finish();
  });
  std::mutex mutex;
  std::vector<int> order;
  const auto enqueue = [&](int tag, TaskPriority priority) {
    group.start();
    pool.submit(
        [&, tag] {
          {
            std::lock_guard<std::mutex> lock(mutex);
            order.push_back(tag);
          }
          group.finish();
        },
        priority);
  };
  for (int i = 0; i < 4; ++i) {
    enqueue(300 + i, TaskPriority::Low);
    enqueue(200 + i, TaskPriority::Normal);
    enqueue(100 + i, TaskPriority::High);
  }
  gate.set_value();
  group.wait();
  const std::vector<int> expected = {100, 101, 102, 103, 200, 201,
                                     202, 203, 300, 301, 302, 303};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ThreadlessPoolIgnoresPriorityAndStaysFifo) {
  // Inline execution completes each task before submit() returns, so
  // priority cannot reorder anything: submission order is the order.
  ThreadPool pool(1);
  std::vector<int> order;
  pool.submit([&] { order.push_back(1); }, TaskPriority::Low);
  pool.submit([&] { order.push_back(2); }, TaskPriority::High);
  pool.submit([&] { order.push_back(3); }, TaskPriority::Normal);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TaskGroup, ReusableAfterDraining) {
  TaskGroup group;
  group.wait();  // empty group: returns immediately
  for (int round = 0; round < 3; ++round) {
    group.start(2);
    EXPECT_EQ(group.pending(), 2u);
    group.finish();
    group.finish();
    group.wait();
    EXPECT_EQ(group.pending(), 0u);
  }
}

}  // namespace
}  // namespace asmcap
