// asmcap_search — end-to-end CLI over the ingestion pipeline: stream a
// reference FASTA into the sharded live database, pump read chunks from
// FASTA/FASTQ through SearchService::submit under a bounded admission
// window, and stream one TSV/JSON line per read as it completes. Peak
// memory is O(chunk + in-flight), independent of input size.
//
// User guide: docs/cli.md (flags, output schema, exit codes). The
// deterministic output columns (read, status, matches, hits) are golden-
// file-gated by tools/check_e2e.sh; decisions are bit-identical to
// ShardedAccelerator::search_batch on the same records
// (tests/test_stream_reader.cpp ServiceIngestionBitIdentical).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "align/kernels.h"
#include "asmcap/db_error.h"
#include "asmcap/ingest.h"
#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/stream_reader.h"
#include "util/strings.h"

namespace {

using namespace asmcap;

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParse = 3;
constexpr int kExitDb = 4;

struct CliOptions {
  std::string reference;
  std::string reads;
  std::string output;  ///< Empty = stdout.
  std::size_t threshold = 12;
  StrategyMode mode = StrategyMode::Full;
  BackendKind backend = BackendKind::Functional;
  bool noisy = false;
  std::size_t shards = 4;
  std::size_t workers = 1;
  std::size_t array_rows = 256;
  std::size_t arrays = 512;
  std::size_t width = 256;
  std::size_t chunk = 1024;
  std::size_t max_in_flight = 0;
  ServiceClass service_class = ServiceClass::Normal;
  double deadline_seconds = 0.0;
  bool prune = false;
  std::string kernel;  ///< Empty = ASMCAP_KERNEL / CPU detection.
  bool json = false;
  std::uint64_t seed = 0xA5A5'5A5A'C0FF'EE00ULL;
  std::size_t max_hits = 8;
};

void print_usage(std::ostream& out) {
  out << "usage: asmcap_search --reference REF.fa[.gz] --reads READS.{fa,fq}[.gz] [options]\n"
         "\n"
         "Streams reads through the ASMCap search service against a reference\n"
         "FASTA, one TSV/JSON result line per read. Full guide: docs/cli.md.\n"
         "\n"
         "required:\n"
         "  --reference PATH   reference FASTA (gzip ok when built with zlib)\n"
         "  --reads PATH       reads, FASTA or FASTQ (auto-detected; gzip ok)\n"
         "options:\n"
         "  --threshold N      match threshold T in bases (default 12)\n"
         "  --mode M           full | baseline | hdac | tasr (default full)\n"
         "  --backend B        functional | circuit (default functional)\n"
         "  --noisy            enable the analog noise model (default ideal sensing)\n"
         "  --shards N         database shard count (default 4)\n"
         "  --workers N        worker threads (0 = one per hardware thread; default 1)\n"
         "  --array-rows N     rows per CAM array (default 256)\n"
         "  --arrays N         arrays per shard (default 512)\n"
         "  --width N          segment/read width in bases (default 256)\n"
         "  --chunk N          reads per submitted chunk (default 1024)\n"
         "  --max-in-flight N  admission window (0 = 2 x workers; default 0)\n"
         "  --class C          interactive | normal | bulk (default normal)\n"
         "  --deadline S       per-chunk deadline in seconds (0 = none)\n"
         "  --prune            enable sketch-based shard pruning\n"
         "  --kernel K         scalar | avx2 | neon (default: ASMCAP_KERNEL or CPU)\n"
         "  --format F         tsv | json (default tsv)\n"
         "  --output PATH      write results to PATH instead of stdout\n"
         "  --seed N           deterministic RNG seed\n"
         "  --max-hits N       matched-segment labels printed per read (default 8)\n"
         "  --help             this text\n"
         "exit codes: 0 ok, 1 runtime error, 2 usage, 3 input parse error,\n"
         "            4 database error (e.g. reference exceeds capacity)\n";
}

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "asmcap_search: " << message << "\n";
  std::cerr << "asmcap_search: try --help\n";
  std::exit(kExitUsage);
}

std::size_t parse_size(const std::string& flag, const std::string& value) {
  try {
    const long long parsed = std::stoll(value);
    if (parsed < 0) throw std::invalid_argument("negative");
    return static_cast<std::size_t>(parsed);
  } catch (const std::exception&) {
    usage_error(flag + " expects a non-negative integer, got '" + value + "'");
  }
}

double parse_seconds(const std::string& flag, const std::string& value) {
  try {
    const double parsed = std::stod(value);
    if (parsed < 0) throw std::invalid_argument("negative");
    return parsed;
  } catch (const std::exception&) {
    usage_error(flag + " expects a non-negative number, got '" + value + "'");
  }
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc)
      usage_error(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(kExitOk);
    } else if (arg == "--reference") {
      options.reference = need_value(i);
    } else if (arg == "--reads") {
      options.reads = need_value(i);
    } else if (arg == "--output") {
      options.output = need_value(i);
    } else if (arg == "--threshold") {
      options.threshold = parse_size(arg, need_value(i));
    } else if (arg == "--mode") {
      const std::string value = need_value(i);
      if (value == "full") options.mode = StrategyMode::Full;
      else if (value == "baseline") options.mode = StrategyMode::Baseline;
      else if (value == "hdac") options.mode = StrategyMode::HdacOnly;
      else if (value == "tasr") options.mode = StrategyMode::TasrOnly;
      else usage_error("--mode must be full|baseline|hdac|tasr, got '" + value + "'");
    } else if (arg == "--backend") {
      const std::string value = need_value(i);
      if (value == "functional") options.backend = BackendKind::Functional;
      else if (value == "circuit") options.backend = BackendKind::Circuit;
      else usage_error("--backend must be functional|circuit, got '" + value + "'");
    } else if (arg == "--noisy") {
      options.noisy = true;
    } else if (arg == "--shards") {
      options.shards = parse_size(arg, need_value(i));
      if (options.shards == 0) usage_error("--shards must be >= 1");
    } else if (arg == "--workers") {
      options.workers = parse_size(arg, need_value(i));
    } else if (arg == "--array-rows") {
      options.array_rows = parse_size(arg, need_value(i));
      if (options.array_rows == 0) usage_error("--array-rows must be >= 1");
    } else if (arg == "--arrays") {
      options.arrays = parse_size(arg, need_value(i));
      if (options.arrays == 0) usage_error("--arrays must be >= 1");
    } else if (arg == "--width") {
      options.width = parse_size(arg, need_value(i));
      if (options.width == 0) usage_error("--width must be >= 1");
    } else if (arg == "--chunk") {
      options.chunk = parse_size(arg, need_value(i));
      if (options.chunk == 0) usage_error("--chunk must be >= 1");
    } else if (arg == "--max-in-flight") {
      options.max_in_flight = parse_size(arg, need_value(i));
    } else if (arg == "--class") {
      const std::string value = need_value(i);
      if (value == "interactive") options.service_class = ServiceClass::Interactive;
      else if (value == "normal") options.service_class = ServiceClass::Normal;
      else if (value == "bulk") options.service_class = ServiceClass::Bulk;
      else usage_error("--class must be interactive|normal|bulk, got '" + value + "'");
    } else if (arg == "--deadline") {
      options.deadline_seconds = parse_seconds(arg, need_value(i));
    } else if (arg == "--prune") {
      options.prune = true;
    } else if (arg == "--kernel") {
      options.kernel = need_value(i);
    } else if (arg == "--format") {
      const std::string value = need_value(i);
      if (value == "tsv") options.json = false;
      else if (value == "json") options.json = true;
      else usage_error("--format must be tsv|json, got '" + value + "'");
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(
          parse_size(arg, need_value(i)));
    } else if (arg == "--max-hits") {
      options.max_hits = parse_size(arg, need_value(i));
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }
  if (options.reference.empty()) usage_error("--reference is required");
  if (options.reads.empty()) usage_error("--reads is required");
  return options;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One output row in chunk order; filled either immediately (skipped
/// reads) or by the in-order completion callback.
struct Row {
  std::string id;
  const char* status = "ok";
  bool ready = false;
  std::size_t matches = 0;
  std::string hits = "-";       ///< TSV form: comma-joined labels or "-".
  std::string hits_json = "[]";  ///< JSON form.
  double latency = 0.0;
  double energy = 0.0;
};

struct RunTotals {
  std::size_t reads = 0;
  std::size_t done = 0;
  std::size_t skipped = 0;
  std::size_t aborted = 0;
  std::size_t matched = 0;  ///< Reads with >= 1 matched segment.
  double latency = 0.0;
  double energy = 0.0;
};

void emit_row(std::ostream& out, const CliOptions& options, const Row& row) {
  std::ostringstream line;
  if (options.json) {
    line << "{\"read\":\"" << json_escape(row.id) << "\",\"status\":\""
         << row.status << "\",\"matches\":" << row.matches
         << ",\"hits\":" << row.hits_json << ",\"latency_s\":" << row.latency
         << ",\"energy_j\":" << row.energy << "}";
  } else {
    line << row.id << '\t' << row.status << '\t' << row.matches << '\t'
         << row.hits << '\t' << row.latency << '\t' << row.energy;
  }
  out << line.str() << '\n';
}

void fill_row(Row& row, const QueryResult& result, const ReferenceIndex& index,
              std::size_t max_hits) {
  row.status = "ok";
  row.matches = result.matched_segments.size();
  row.latency = result.latency_seconds;
  row.energy = result.energy_joules;
  if (result.matched_segments.empty()) {
    // Move-assignment sidesteps a GCC 12 -Wrestrict false positive that
    // in-place const char* assignment trips when inlined into the callback.
    row.hits = std::string("-");
    row.hits_json = std::string("[]");
    return;
  }
  std::string tsv;
  std::string json = "[";
  const std::size_t shown = std::min(max_hits, result.matched_segments.size());
  for (std::size_t h = 0; h < shown; ++h) {
    const std::string label = index.label(result.matched_segments[h]);
    if (h != 0) {
      tsv += ',';
      json += ',';
    }
    tsv += label;
    json += '"';
    json += json_escape(label);
    json += '"';
  }
  if (shown < result.matched_segments.size()) tsv += ",...";
  json += ']';
  row.hits = std::move(tsv);
  row.hits_json = std::move(json);
}

int run(const CliOptions& options) {
  // ------------------------------------------------------ configuration --
  AsmcapConfig config;
  config.array_rows = options.array_rows;
  config.array_cols = options.width;
  config.array_count = options.arrays;
  config.ideal_sensing = !options.noisy;
  config.pruning.enabled = options.prune;
  config.seed = options.seed;

  if (!options.kernel.empty())
    set_active_kernel_tier(
        resolve_kernel_tier(options.kernel.c_str(), detect_kernel_tier()));

  ShardedAccelerator db(config, options.shards);
  db.set_backend(options.backend);

  // ---------------------------------------------------------- reference --
  SeqStreamReader reference(options.reference);
  ReferenceIndex index;
  const IngestStats ingest = ingest_reference(db, reference, {}, &index);
  if (ingest.ambiguous_bases != 0)
    std::cerr << "asmcap_search: warning: reference has "
              << ingest.ambiguous_bases
              << " ambiguous bases (non-ACGT, e.g. 'N'), deterministically "
                 "resolved to 'A' (see docs/cli.md)\n";
  std::cerr << "asmcap_search: reference " << options.reference << ": "
            << ingest.records << " records, " << ingest.bases << " bases -> "
            << ingest.segments << " segments of width " << options.width
            << " (" << ingest.padded_segments << " padded) across "
            << options.shards << " shards\n";
  if (ingest.segments == 0) {
    std::cerr << "asmcap_search: reference yielded no segments\n";
    return kExitError;
  }

  // -------------------------------------------------------------- output --
  std::ofstream file_out;
  if (!options.output.empty()) {
    file_out.open(options.output);
    if (!file_out) {
      std::cerr << "asmcap_search: cannot write " << options.output << "\n";
      return kExitError;
    }
  }
  std::ostream& out = options.output.empty() ? std::cout : file_out;
  if (!options.json)
    out << "read\tstatus\tmatches\thits\tlatency_s\tenergy_j\n";

  // ---------------------------------------------------------- read pump --
  // One ticket per chunk; the next chunk is read from disk while the
  // current ticket executes, and in-order streaming callbacks emit rows
  // as reads merge, so peak memory is O(chunk + in-flight) regardless of
  // input size.
  SearchService service(db);
  SeqStreamReader reads(options.reads);
  RunTotals totals;
  bool width_warned = false;

  std::vector<SeqRecord> chunk = reads.read_chunk(options.chunk);
  while (!chunk.empty()) {
    std::vector<Row> rows(chunk.size());
    std::vector<Sequence> submit;
    std::vector<std::size_t> slot_of;  ///< submit index -> chunk slot.
    submit.reserve(chunk.size());
    slot_of.reserve(chunk.size());
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      rows[i].id = chunk[i].id;
      if (chunk[i].seq.size() != options.width) {
        rows[i].status = "skipped";
        rows[i].ready = true;
        ++totals.skipped;
        if (!width_warned) {
          std::cerr << "asmcap_search: warning: skipping read '"
                    << chunk[i].id << "' with length "
                    << chunk[i].seq.size() << " != --width "
                    << options.width
                    << " (further skips counted silently)\n";
          width_warned = true;
        }
      } else {
        submit.push_back(chunk[i].seq);
        slot_of.push_back(i);
      }
    }
    totals.reads += chunk.size();

    std::mutex flush_mutex;
    std::size_t next_flush = 0;
    auto flush_ready = [&]() {
      while (next_flush < rows.size() && rows[next_flush].ready) {
        emit_row(out, options, rows[next_flush]);
        ++next_flush;
      }
    };

    if (!submit.empty()) {
      ServiceOptions service_options;
      service_options.workers = options.workers;
      service_options.max_in_flight = options.max_in_flight;
      service_options.service_class = options.service_class;
      service_options.deadline_seconds = options.deadline_seconds;
      service_options.in_order = true;
      service_options.keep_results = false;
      service_options.on_complete = [&](std::size_t i,
                                        const QueryResult& result) {
        // in_order serialises delivery, but the lock also covers the
        // post-wait flush on the control thread.
        std::lock_guard<std::mutex> lock(flush_mutex);
        Row& row = rows[slot_of[i]];
        fill_row(row, result, index, options.max_hits);
        row.ready = true;
        if (!result.matched_segments.empty()) ++totals.matched;
        totals.latency += result.latency_seconds;
        totals.energy += result.energy_joules;
        ++totals.done;
        flush_ready();
      };

      auto ticket = service.submit(std::move(submit), options.threshold,
                                   options.mode, service_options);
      // Overlap the next chunk's disk read with this chunk's execution.
      std::vector<SeqRecord> next = reads.read_chunk(options.chunk);
      ticket->wait();
      {
        std::lock_guard<std::mutex> lock(flush_mutex);
        for (std::size_t i = 0; i < slot_of.size(); ++i) {
          Row& row = rows[slot_of[i]];
          if (row.ready) continue;
          switch (ticket->outcome(i)) {
            case ReadOutcome::Expired: row.status = "expired"; break;
            case ReadOutcome::Cancelled: row.status = "cancelled"; break;
            default: row.status = "failed"; break;
          }
          row.ready = true;
          ++totals.aborted;
        }
        flush_ready();
      }
      chunk = std::move(next);
    } else {
      flush_ready();
      chunk = reads.read_chunk(options.chunk);
    }
  }

  if (reads.ambiguous_bases() != 0)
    std::cerr << "asmcap_search: warning: reads have "
              << reads.ambiguous_bases()
              << " ambiguous bases, deterministically resolved to 'A'\n";
  std::cerr << "asmcap_search: " << totals.reads << " reads ("
            << to_string(reads.format()) << "): " << totals.done << " done ("
            << totals.matched << " matched), " << totals.skipped
            << " skipped, " << totals.aborted << " aborted; model latency "
            << totals.latency << " s, energy " << totals.energy << " J\n";
  out.flush();
  if (!out) {
    std::cerr << "asmcap_search: write failure\n";
    return kExitError;
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse_args(argc, argv);
  try {
    return run(options);
  } catch (const StreamParseError& e) {
    std::cerr << "asmcap_search: " << e.what() << "\n";
    return kExitParse;
  } catch (const DbError& e) {
    std::cerr << "asmcap_search: database error: " << e.what() << "\n";
    return kExitDb;
  } catch (const std::exception& e) {
    std::cerr << "asmcap_search: " << e.what() << "\n";
    return kExitError;
  }
}
