// asmcap_testgen — deterministic FASTA/FASTQ generator behind the
// end-to-end CLI gate (tools/check_e2e.sh). Writes a multi-record,
// line-wrapped reference FASTA and a FASTQ read set simulated from
// tile-aligned windows of that reference (condition-A error rates), so a
// known fraction of reads matches when searched at the same width. Fully
// deterministic from --seed: the committed golden file
// (tests/golden/e2e_search.tsv) depends on it.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "genome/edits.h"
#include "genome/fasta.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using namespace asmcap;

struct GenOptions {
  std::string reference_out;
  std::string reads_out;
  std::size_t width = 128;       ///< Tile width == read length.
  std::size_t records = 2;       ///< Reference records.
  std::size_t tiles = 8;         ///< Tiles per reference record.
  std::size_t reads = 32;        ///< Simulated reads.
  std::uint64_t seed = 7;
  std::size_t wrap = 60;         ///< FASTA line wrap.
  bool inject_ambiguous = false; ///< Sprinkle a few 'N's into the FASTA.
};

[[noreturn]] void usage(const char* self) {
  std::cerr << "usage: " << self
            << " REFERENCE.fa READS.fq [--width N] [--records N] [--tiles N]"
               " [--reads N] [--seed N] [--wrap N] [--ambiguous]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  GenOptions options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--width") options.width = std::stoul(value());
    else if (arg == "--records") options.records = std::stoul(value());
    else if (arg == "--tiles") options.tiles = std::stoul(value());
    else if (arg == "--reads") options.reads = std::stoul(value());
    else if (arg == "--seed") options.seed = std::stoull(value());
    else if (arg == "--wrap") options.wrap = std::stoul(value());
    else if (arg == "--ambiguous") options.inject_ambiguous = true;
    else if (arg.rfind("--", 0) == 0) usage(argv[0]);
    else positional.push_back(arg);
  }
  if (positional.size() != 2 || options.width == 0 || options.records == 0 ||
      options.tiles < 2)
    usage(argv[0]);
  options.reference_out = positional[0];
  options.reads_out = positional[1];

  Rng rng(options.seed);
  const ReferenceModel model;

  // Reference: `records` records of `tiles` full-width tiles each, so the
  // whole reference tiles exactly (no padding) at --width.
  std::vector<FastaRecord> reference(options.records);
  Sequence flat;  // Concatenation, for simulating reads per record.
  std::vector<Sequence> record_seqs;
  for (std::size_t r = 0; r < options.records; ++r) {
    Rng stream = rng.fork(r + 1);
    reference[r].id = "ref" + std::to_string(r);
    reference[r].comment = "synthetic record " + std::to_string(r);
    reference[r].seq =
        generate_reference(options.width * options.tiles, model, stream);
    record_seqs.push_back(reference[r].seq);
  }
  write_fasta_file(options.reference_out, reference, options.wrap);

  // Reads: round-robin over records; tile-aligned origins with
  // condition-A errors, so most reads land within a small threshold of
  // their source tile. Every read is exactly --width bases.
  std::FILE* fq = std::fopen(options.reads_out.c_str(), "wb");
  if (fq == nullptr) {
    std::cerr << "asmcap_testgen: cannot write " << options.reads_out << "\n";
    return 1;
  }
  ReadSimConfig sim_config;
  sim_config.read_length = options.width;
  sim_config.rates = ErrorRates::condition_a();
  Rng read_rng = rng.fork(0xEAD);
  for (std::size_t i = 0; i < options.reads; ++i) {
    const std::size_t record = i % options.records;
    ReadSimulator simulator(record_seqs[record], sim_config);
    // The final tile is never an origin: it is the repad slack the
    // simulator extends into when deletions shorten the window.
    const std::size_t tile = read_rng.below(options.tiles - 1);
    Rng stream = read_rng.fork(i + 1);
    const SimulatedRead read =
        simulator.simulate_at(tile * options.width, stream);
    std::string text = read.read.to_string();
    if (options.inject_ambiguous && i % 5 == 0 && !text.empty())
      text[text.size() / 2] = 'N';
    std::fprintf(fq, "@read%zu ref%zu:%zu\n%s\n+\n%s\n", i, record,
                 tile * options.width, text.c_str(),
                 std::string(text.size(), 'I').c_str());
  }
  std::fclose(fq);

  std::cerr << "asmcap_testgen: wrote " << options.records << "x"
            << options.tiles << " tiles (width " << options.width << ") to "
            << options.reference_out << ", " << options.reads << " reads to "
            << options.reads_out << " (seed " << options.seed << ")\n";
  return 0;
}
