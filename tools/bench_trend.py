#!/usr/bin/env python3
"""Fold per-commit bench JSON artifacts into a markdown trend table.

Each input is one "asmcap-bench-v1" report (the --json output of
bench_batch / bench_sharded / bench_service). Reports are grouped by
bench; within a bench, each report becomes one row labelled by its
parent directory (the natural layout when CI downloads one artifact
directory per commit: trend/<sha>/bench_sharded.json), falling back to
the file stem when the parent is uninformative.

  tools/bench_trend.py [--output trend.md] report.json [...]

The table carries the headline speedup, every timed path's throughput,
the decision digest (so a digest drift is visible in the trend, not just
in the gate), and any metrics the report carries (e.g. the pruned arm's
prune_rate / pruned_energy_savings). Reports with an unknown schema are
skipped with a warning rather than failing the run: a trend table should
degrade, not break, when an old artifact lingers.
"""

import argparse
import json
import os
import sys

SCHEMA = "asmcap-bench-v1"


def label_for(path):
    parent = os.path.basename(os.path.dirname(os.path.abspath(path)))
    stem = os.path.splitext(os.path.basename(path))[0]
    # A per-commit artifact directory names the run; a flat pile of files
    # falls back to the file name.
    if parent and parent not in ("", ".", "bench-json", "build"):
        return parent
    return stem


def load_reports(paths):
    reports = []
    for path in paths:
        try:
            with open(path) as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"WARN: skipping {path}: {err}", file=sys.stderr)
            continue
        if report.get("schema") != SCHEMA:
            print(f"WARN: skipping {path}: schema "
                  f"{report.get('schema')!r} != {SCHEMA!r}", file=sys.stderr)
            continue
        report["_label"] = label_for(path)
        reports.append(report)
    return reports


def fmt(value):
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.2f}".rstrip("0").rstrip(".")
    return str(value)


def bench_table(bench, reports):
    # Column set = union over the group, so runs that predate a metric
    # still line up (missing cells render as em-dashes).
    timing_paths, metric_names = [], []
    for report in reports:
        for timing in report.get("timings", []):
            if timing["path"] not in timing_paths:
                timing_paths.append(timing["path"])
        for name in report.get("metrics", {}):
            if name not in metric_names:
                metric_names.append(name)

    header = (["run", "tier", "threads", "speedup"] +
              [f"{path} reads/s" for path in timing_paths] +
              metric_names + ["digest"])
    lines = [f"### {bench}", "",
             "| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for report in reports:
        throughput = {t["path"]: t.get("reads_per_second", 0.0)
                      for t in report.get("timings", [])}
        metrics = report.get("metrics", {})
        row = [report["_label"],
               report.get("kernel_tier", "?"),
               fmt(report.get("hardware_threads", 0)),
               fmt(report.get("speedup", 0.0)) + "x"]
        row += [fmt(throughput[p]) if p in throughput else "—"
                for p in timing_paths]
        row += [fmt(metrics[n]) if n in metrics else "—"
                for n in metric_names]
        row.append(f"`{report.get('decision_digest', '?')}`")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write markdown here (default "
                        "stdout)")
    parser.add_argument("reports", nargs="+")
    opts = parser.parse_args()

    reports = load_reports(opts.reports)
    if not reports:
        sys.exit("FAIL: no readable asmcap-bench-v1 reports")

    grouped = {}
    for report in reports:
        grouped.setdefault(report.get("bench", "?"), []).append(report)

    lines = ["# Bench trend", ""]
    for bench in sorted(grouped):
        lines += bench_table(bench, grouped[bench])
    text = "\n".join(lines)

    if opts.output:
        with open(opts.output, "w") as f:
            f.write(text + "\n")
        print(f"trend table: {len(reports)} report(s), {len(grouped)} "
              f"bench(es) -> {opts.output}")
    else:
        print(text)


if __name__ == "__main__":
    main()
