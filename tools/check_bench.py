#!/usr/bin/env python3
"""Perf-regression gate over the benches' --json output.

Compares one or more "asmcap-bench-v1" reports (written by bench_batch,
bench_sharded, bench_service via src/util/bench_json.*) against the
committed bench/baseline.json:

  * the workload parameters must match the baseline entry exactly (the
    gate only means something on the canonical workload);
  * the decision digest must match EXACTLY — decisions are deterministic
    and invariant in kernel tier, worker count, and compiler, so any
    digest drift is a correctness regression, not noise;
  * the headline speedup must stay within tolerance of the baseline
    (relative: speedup >= expected * (1 - tolerance)) — a timing floor
    that is SKIPPED when the reporting machine has fewer hardware
    threads than the baseline requires, mirroring the benches' own
    scarce-hardware carve-outs;
  * any metric bounds the baseline entry declares (its "metrics" object,
    name -> {"min": x, "max": y}) are enforced against the report's
    metrics — a bounded metric MISSING from the report is a failure
    (e.g. the pruned arm's prune_rate / pruned_digest_matches), while
    report metrics without baseline bounds pass through ungated.

Usage:
  tools/check_bench.py --baseline bench/baseline.json report.json [...]

Exits non-zero on the first hard failure after checking every report.
"""

import argparse
import json
import sys

SCHEMA = "asmcap-bench-v1"
BASELINE_SCHEMA = "asmcap-bench-baseline-v1"
KNOWN_TIERS = {"scalar", "avx2", "neon"}


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def check_report(report_path, baseline):
    with open(report_path) as f:
        report = json.load(f)

    errors = 0
    if report.get("schema") != SCHEMA:
        return fail(f"{report_path}: schema {report.get('schema')!r}, "
                    f"expected {SCHEMA!r}")

    bench = report.get("bench")
    entry = baseline["benches"].get(bench)
    if entry is None:
        return fail(f"{report_path}: no baseline entry for bench {bench!r}")

    tier = report.get("kernel_tier")
    if tier not in KNOWN_TIERS:
        errors += fail(f"{report_path}: unknown kernel_tier {tier!r}")

    # Workload must be the canonical one the baseline was recorded on.
    if report.get("workload") != entry["workload"]:
        errors += fail(
            f"{report_path}: workload {report.get('workload')} differs from "
            f"baseline {entry['workload']} — digests are only comparable on "
            f"the canonical workload")
    elif report.get("decision_digest") != entry["decision_digest"]:
        # Digest is exact: decisions are invariant in tier/workers/compiler.
        errors += fail(
            f"{report_path}: decision digest {report.get('decision_digest')} "
            f"!= baseline {entry['decision_digest']} (kernel_tier={tier}) — "
            f"decisions changed")
    else:
        print(f"OK: {bench}: digest {entry['decision_digest']} matches "
              f"(kernel_tier={tier})")

    # Metric bounds are structural gates (ratios of deterministic counts),
    # not timing: no hardware carve-out applies.
    metrics = report.get("metrics", {})
    for name, bounds in entry.get("metrics", {}).items():
        value = metrics.get(name)
        if value is None:
            errors += fail(f"{report_path}: metric {name!r} bounded by the "
                           f"baseline but missing from the report")
            continue
        low = bounds.get("min")
        high = bounds.get("max")
        if (low is not None and value < low) or \
           (high is not None and value > high):
            errors += fail(f"{report_path}: metric {name} = {value:.4f} "
                           f"outside baseline bounds [{low}, {high}]")
        else:
            print(f"OK: {bench}: metric {name} = {value:.4f} within "
                  f"[{low}, {high}]")

    gate = entry.get("speedup")
    if gate:
        threads = report.get("hardware_threads", 0)
        needed = gate.get("min_hardware_threads", 1)
        floor = gate["expected"] * (1.0 - gate.get("tolerance", 0.0))
        speedup = report.get("speedup", 0.0)
        if threads < needed:
            print(f"SKIP: {bench}: speedup floor {floor:.2f}x not enforced "
                  f"({threads} hardware threads < {needed})")
        elif speedup < floor:
            errors += fail(
                f"{report_path}: speedup {speedup:.2f}x below "
                f"{floor:.2f}x (= {gate['expected']} * "
                f"(1 - {gate.get('tolerance', 0.0)}))")
        else:
            print(f"OK: {bench}: speedup {report['speedup']:.2f}x >= "
                  f"{floor:.2f}x floor")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("reports", nargs="+")
    opts = parser.parse_args()

    with open(opts.baseline) as f:
        baseline = json.load(f)
    if baseline.get("schema") != BASELINE_SCHEMA:
        sys.exit(fail(f"{opts.baseline}: schema {baseline.get('schema')!r}, "
                      f"expected {BASELINE_SCHEMA!r}"))

    errors = 0
    for report_path in opts.reports:
        errors += check_report(report_path, baseline)
    if errors:
        sys.exit(1)
    print(f"bench gate OK: {len(opts.reports)} report(s) checked")


if __name__ == "__main__":
    main()
