#!/usr/bin/env bash
# Docs gate (run by the CI `docs` job and available locally):
#   1. every relative markdown link in README.md and docs/*.md resolves to
#      a file or directory in the repository;
#   2. every public header of the engine's API surface carries a doc block
#      with an explicit thread-safety note (the contract the headers
#      promise in docs/architecture.md);
#   3. every flag the asmcap_search CLI accepts is documented in
#      docs/cli.md (the flag literals are greppable in both files, so a
#      new flag without a docs entry fails the gate).
set -u
cd "$(dirname "$0")/.."

fail=0

# ----------------------------------------------------------- link check --
for md in README.md docs/*.md; do
  [ -e "$md" ] || continue
  dir=$(dirname "$md")
  # Inline markdown links: [text](target). External URLs and pure anchors
  # are skipped; #section suffixes on file links are stripped.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done

# ----------------------------------------------- header doc-block check --
headers="
src/asmcap/accelerator.h
src/asmcap/db_error.h
src/asmcap/sketch.h
src/asmcap/sharded.h
src/asmcap/readmapper.h
src/asmcap/backend.h
src/asmcap/edam.h
src/asmcap/service.h
src/asmcap/service_error.h
src/asmcap/ingest.h
src/genome/stream_reader.h
src/align/kernels.h
src/util/thread_pool.h
src/util/thread_annotations.h
src/util/clock.h
"
for h in $headers; do
  if [ ! -e "$h" ]; then
    echo "MISSING HEADER: $h"
    fail=1
    continue
  fi
  # The file must open with a comment block...
  if ! sed -n '2p' "$h" | grep -q '^//'; then
    echo "MISSING DOC BLOCK: $h (no header comment after #pragma once)"
    fail=1
  fi
  # ...that states the thread-safety contract.
  if ! grep -q 'Thread-safety' "$h"; then
    echo "MISSING THREAD-SAFETY NOTE: $h"
    fail=1
  fi
done

# ------------------------------------------------ CLI flag coverage --
# Every "--flag" string literal the CLI parses must appear in the user
# guide. (The parser only compares against double-dash literals, so this
# grep is exactly the accepted flag set.)
if [ -e tools/asmcap_search.cpp ] && [ -e docs/cli.md ]; then
  while IFS= read -r flag; do
    if ! grep -q -- "$flag" docs/cli.md; then
      echo "UNDOCUMENTED FLAG: asmcap_search $flag missing from docs/cli.md"
      fail=1
    fi
  done < <(grep -oE '"--[a-z-]+"' tools/asmcap_search.cpp | tr -d '"' | sort -u)
else
  echo "MISSING: tools/asmcap_search.cpp or docs/cli.md"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "docs gate FAILED"
  exit 1
fi
echo "docs gate OK: links resolve, API headers carry doc blocks, CLI flags documented"
