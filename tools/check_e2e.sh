#!/usr/bin/env bash
# End-to-end CLI gate (ctest `e2e_cli`, also run in CI): generate a
# deterministic FASTA reference + FASTQ read set with asmcap_testgen, run
# asmcap_search over them, and diff the DETERMINISTIC output columns
# (read, status, matches, hits — `cut -f1-4`) against the committed golden
# file tests/golden/e2e_search.tsv. The latency/energy columns are
# deterministic doubles of the cost model but may differ in the last ULP
# across compilers/ISAs (FMA contraction), so they are excluded from the
# byte-compare; the decision digest equality is separately enforced by
# tests/test_stream_reader.cpp and bench_ingest.
#
# usage: check_e2e.sh <asmcap_testgen> <asmcap_search> <golden-dir>
# Regenerate the golden after an intentional decision change with:
#   ASMCAP_UPDATE_GOLDEN=1 tools/check_e2e.sh build/asmcap_testgen \
#       build/asmcap_search tests/golden
set -euo pipefail

if [ $# -ne 3 ]; then
  echo "usage: $0 <asmcap_testgen> <asmcap_search> <golden-dir>" >&2
  exit 2
fi
TESTGEN=$1
SEARCH=$2
GOLDEN_DIR=$3
GOLDEN="$GOLDEN_DIR/e2e_search.tsv"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Keep these flags in lockstep with the committed golden (docs/cli.md has
# the schema; the run is small enough for the sanitizer CI legs too).
"$TESTGEN" "$WORK/ref.fa" "$WORK/reads.fq" \
  --width 128 --records 2 --tiles 6 --reads 24 --seed 7 --ambiguous
"$SEARCH" \
  --reference "$WORK/ref.fa" --reads "$WORK/reads.fq" \
  --width 128 --array-rows 64 --arrays 4 --shards 2 \
  --threshold 12 --workers 2 --chunk 8 \
  --output "$WORK/out.tsv" 2> "$WORK/search.log"

cut -f1-4 "$WORK/out.tsv" > "$WORK/out.cut.tsv"

if [ "${ASMCAP_UPDATE_GOLDEN:-0}" = "1" ]; then
  mkdir -p "$GOLDEN_DIR"
  cp "$WORK/out.cut.tsv" "$GOLDEN"
  echo "check_e2e: regenerated $GOLDEN"
  exit 0
fi

if [ ! -f "$GOLDEN" ]; then
  echo "check_e2e: missing golden file $GOLDEN" >&2
  echo "check_e2e: run with ASMCAP_UPDATE_GOLDEN=1 to create it" >&2
  exit 1
fi

if ! diff -u "$GOLDEN" "$WORK/out.cut.tsv"; then
  echo "check_e2e: FAIL — deterministic columns diverge from $GOLDEN" >&2
  echo "check_e2e: if the decision change is intentional, regenerate with" >&2
  echo "check_e2e:   ASMCAP_UPDATE_GOLDEN=1 $0 $TESTGEN $SEARCH $GOLDEN_DIR" >&2
  exit 1
fi

# The ambiguity warning (docs/cli.md N->A policy) must surface: the
# generated read set injects 'N's via --ambiguous.
if ! grep -q "ambiguous bases" "$WORK/search.log"; then
  echo "check_e2e: FAIL — expected an ambiguous-bases warning on stderr" >&2
  cat "$WORK/search.log" >&2
  exit 1
fi

# JSON mode smoke: same run, one JSON object per read, same decisions.
"$SEARCH" \
  --reference "$WORK/ref.fa" --reads "$WORK/reads.fq" \
  --width 128 --array-rows 64 --arrays 4 --shards 2 \
  --threshold 12 --workers 2 --chunk 8 --format json \
  --output "$WORK/out.json" 2>> "$WORK/search.log"
READS=$(tail -n +2 "$WORK/out.tsv" | wc -l)
JSON_LINES=$(wc -l < "$WORK/out.json")
if [ "$READS" != "$JSON_LINES" ]; then
  echo "check_e2e: FAIL — $JSON_LINES JSON lines for $READS reads" >&2
  exit 1
fi
if grep -qv '^{' "$WORK/out.json"; then
  echo "check_e2e: FAIL — non-JSON line in $WORK/out.json" >&2
  exit 1
fi

echo "check_e2e: OK ($READS reads, deterministic columns match golden)"
