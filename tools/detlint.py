#!/usr/bin/env python3
"""Determinism lint: mechanical enforcement of docs/determinism.md.

Scans C++ sources for the nondeterminism sources the determinism
discipline bans, and emits every finding with the determinism.md rule it
violates, so a diagnostic is always traceable to the written contract:

  DET-BANNED-SOURCE  ad-hoc RNG (std::random_device, mt19937, rand,
                     srand) anywhere outside bench/, util/clock.h and
                     util/rng.* — all randomness flows through the
                     forkable Rng tree            [determinism.md rule 1]
  DET-WALL-CLOCK     wall-clock reads (system_clock,
                     high_resolution_clock, time()) in the same scope —
                     reproducible results may not depend on wall time;
                     timing goes through util/clock.h
                                                 [determinism.md rule 4]
  DET-SEQ-DRAW       sequential draws from member Rng state
                     (`rng_.next()`) in src/asmcap decision paths.
                     Decision streams must be pure forks keyed by
                     (epoch, read, pass, global segment id); the one
                     legal shape is the control-plane fork-keying idiom
                     `rng_.fork(rng_.next())`     [determinism.md rule 1]
  DET-SLEEP          std::this_thread::sleep_for in src/asmcap —
                     the engine never sleeps; schedulers wait on state,
                     tests advance a VirtualClock
                                               [determinism.md rule 4/9]

Two analysis modes, same rule engine: with python libclang bindings
installed the file is scrubbed via the real token stream (comments and
string/char literals dropped by token kind); otherwise a built-in
lexer-grade scrubber blanks comments and literals. Both preserve byte
offsets, so findings carry exact line:column either way.

Usage:
  tools/detlint.py [src ...]      lint these roots (default: src)
  tools/detlint.py --list-rules   print the rule -> determinism.md table
  tools/detlint.py --self-test    run the tests/lint_fixtures suite

Fixtures declare intent in comments: `detlint-as: <pretend path>` lints
the fixture as if it lived at that path (so scoped rules apply), and
each `detlint-expect: <RULE-ID>` names a rule that MUST fire — the
self-test fails unless exactly the expected rules trip.
"""

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

REPO = pathlib.Path(__file__).resolve().parent.parent
SOURCE_SUFFIXES = {".cpp", ".cc", ".h", ".hpp"}

# Paths (repo-relative, '/'-separated) where the source/clock bans do
# not apply: benches time real work, util/clock.h wraps the one legal
# clock, util/rng.* implements the stream tree itself, and the lint
# fixtures trip rules on purpose.
EXEMPT_PREFIXES = ("bench/", "tests/lint_fixtures/")
EXEMPT_FILES = ("src/util/clock.h",)
EXEMPT_STEMS = ("src/util/rng",)


def _exempt(rel):
    return (rel.startswith(EXEMPT_PREFIXES) or rel in EXEMPT_FILES
            or any(rel.startswith(s + ".") for s in EXEMPT_STEMS))


def _in_asmcap(rel):
    return rel.startswith("src/asmcap/")


# The fork-keying idiom determinism.md rule 1 allows on the control
# plane: the single sequential draw that keys a per-query fork,
# `rng_.fork(rng_.next())`. Blanked before DET-SEQ-DRAW runs.
FORK_KEY_IDIOM = re.compile(
    r"\b([A-Za-z_]\w*_)\s*\.\s*fork\s*\(\s*\1\s*\.\s*next\s*\(\s*\)\s*\)")


@dataclass(frozen=True)
class Rule:
    rule_id: str
    det_rule: str        # the determinism.md rule this check enforces
    check: str           # what the check mechanically matches
    why: str             # the contract, quoted for every finding
    patterns: tuple      # compiled regexes over the scrubbed text
    applies: object      # rel-path predicate


RULES = (
    Rule(
        rule_id="DET-BANNED-SOURCE",
        det_rule="determinism.md rule 1",
        check="std::random_device / mt19937 / rand() / srand() outside "
              "bench/, util/clock.h, util/rng.*",
        why="every stochastic quantity is drawn from the forkable Rng "
            "stream tree; ad-hoc RNG state cannot be forked per index",
        patterns=(
            re.compile(r"\bstd\s*::\s*random_device\b"),
            re.compile(r"\bmt19937(?:_64)?\b"),
            re.compile(r"\bs?rand\s*\("),
        ),
        applies=lambda rel: not _exempt(rel),
    ),
    Rule(
        rule_id="DET-WALL-CLOCK",
        det_rule="determinism.md rule 4",
        check="system_clock / high_resolution_clock / time() outside "
              "bench/, util/clock.h, util/rng.*",
        why="reproducible results must not depend on wall-clock time; "
            "time reaches the engine only through util/clock.h",
        patterns=(
            re.compile(r"\bsystem_clock\b"),
            re.compile(r"\bhigh_resolution_clock\b"),
            re.compile(r"(?<![\w.])time\s*\("),
        ),
        applies=lambda rel: not _exempt(rel),
    ),
    Rule(
        rule_id="DET-SEQ-DRAW",
        det_rule="determinism.md rule 1",
        check="member-Rng sequential draw (`member_.next()`) in "
              "src/asmcap outside the `x_.fork(x_.next())` idiom",
        why="decision streams must be pure forks keyed by global "
            "segment id, never draws from shared sequential state",
        patterns=(
            re.compile(r"\b[A-Za-z_]\w*_\s*\.\s*next\s*\(\s*\)"),
        ),
        applies=_in_asmcap,
    ),
    Rule(
        rule_id="DET-SLEEP",
        det_rule="determinism.md rule 4/9",
        check="std::this_thread::sleep_for in src/asmcap",
        why="the engine waits on state, never on time; scheduling may "
            "reorder execution but results may not depend on it",
        patterns=(
            re.compile(r"\bsleep_for\s*\("),
        ),
        applies=_in_asmcap,
    ),
)


@dataclass(frozen=True)
class Finding:
    rel: str
    line: int
    col: int
    rule: Rule
    excerpt: str


# ------------------------------------------------------------- scrubbers --
# Both scrubbers return text of the SAME length as the input with
# comments and string/char literals blanked, so regex match offsets map
# straight back to source positions.

def scrub_manual(text):
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, STR, CHR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                # Raw strings: R"delim( ... )delim"
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1:i + 20])
                if i > 0 and text[i - 1] == "R" and m:
                    end = text.find(")" + m.group(1) + '"', i)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    for j in range(i, end):
                        if out[j] != "\n":
                            out[j] = " "
                    i = end
                    continue
                state = STR
                i += 1
                continue
            if c == "'":
                state = CHR
                i += 1
                continue
            i += 1
            continue
        if state == LINE:
            if c == "\n":
                state = NORMAL
            else:
                out[i] = " "
            i += 1
            continue
        if state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
        # STR / CHR: blank until the unescaped closing quote.
        if c == "\\" and nxt:
            out[i] = " "
            if nxt != "\n":
                out[i + 1] = " "
            i += 2
            continue
        if (state == STR and c == '"') or (state == CHR and c == "'"):
            state = NORMAL
        elif c != "\n":
            out[i] = " "
        i += 1
    return "".join(out)


def _load_libclang():
    try:
        from clang import cindex
        index = cindex.Index.create()
        return cindex, index
    except Exception:
        return None


def scrub_libclang(cindex, index, path, text):
    """Token-accurate scrub: keep only non-comment, non-literal tokens."""
    data = text.encode("utf-8")
    tu = index.parse(str(path), args=["-std=c++20", "-fsyntax-only"],
                     unsaved_files=[(str(path), data)])
    out = bytearray(b" " * len(data))
    for i, b in enumerate(data):
        if b == 0x0A:
            out[i] = 0x0A
    drop = (cindex.TokenKind.COMMENT, cindex.TokenKind.LITERAL)
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.kind in drop:
            continue
        start = tok.extent.start.offset
        spelling = tok.spelling.encode("utf-8")
        out[start:start + len(spelling)] = spelling
    return out.decode("utf-8", errors="replace")


# ----------------------------------------------------------- rule engine --

def lint_text(rel, text, scrubbed):
    findings = []
    lines = text.splitlines()
    starts = []  # byte offset of each line start, for offset -> line:col
    pos = 0
    for ln in lines:
        starts.append(pos)
        pos += len(ln) + 1
    for rule in RULES:
        if not rule.applies(rel):
            continue
        hay = scrubbed
        if rule.rule_id == "DET-SEQ-DRAW":
            hay = FORK_KEY_IDIOM.sub(lambda m: " " * len(m.group(0)), hay)
        for pat in rule.patterns:
            for m in pat.finditer(hay):
                line = _line_of(starts, m.start())
                col = m.start() - starts[line - 1] + 1
                excerpt = lines[line - 1].strip() if line <= len(lines) \
                    else ""
                findings.append(Finding(rel, line, col, rule, excerpt))
    findings.sort(key=lambda f: (f.rel, f.line, f.col, f.rule.rule_id))
    return findings


def _line_of(starts, offset):
    lo, hi = 0, len(starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if starts[mid] <= offset:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def lint_file(path, rel, libclang):
    text = path.read_text(encoding="utf-8", errors="replace")
    scrubbed = None
    if libclang is not None:
        try:
            scrubbed = scrub_libclang(*libclang, path, text)
        except Exception:
            scrubbed = None  # fall back rather than fail the run
    if scrubbed is None or len(scrubbed) != len(text):
        scrubbed = scrub_manual(text)
    return lint_text(rel, text, scrubbed)


def collect_sources(roots):
    files = []
    for root in roots:
        p = pathlib.Path(root)
        if not p.is_absolute():
            p = REPO / p
        if p.is_file():
            files.append(p)
            continue
        files.extend(f for f in sorted(p.rglob("*"))
                     if f.suffix in SOURCE_SUFFIXES and f.is_file())
    return files


def rel_of(path):
    try:
        return path.resolve().relative_to(REPO).as_posix()
    except ValueError:
        return path.as_posix()


def print_findings(findings):
    for f in findings:
        print(f"{f.rel}:{f.line}:{f.col}: [{f.rule.rule_id}] "
              f"{f.rule.check}")
        print(f"    {f.excerpt}")
        print(f"    -> {f.rule.det_rule}: {f.rule.why}")


def print_rules():
    print("rule -> check -> determinism.md mapping:")
    for rule in RULES:
        print(f"  {rule.rule_id:<18} {rule.det_rule}")
        print(f"    checks: {rule.check}")
        print(f"    because: {rule.why}")


# -------------------------------------------------------------- self-test --
AS_DIRECTIVE = re.compile(r"detlint-as:\s*(\S+)")
EXPECT_DIRECTIVE = re.compile(r"detlint-expect:\s*([A-Z-]+)")


def self_test(fixture_dir, libclang):
    fixtures = sorted(pathlib.Path(fixture_dir).glob("*.cpp"))
    if not fixtures:
        print(f"FAIL: no fixtures in {fixture_dir}")
        return 1
    failures = 0
    for path in fixtures:
        text = path.read_text(encoding="utf-8")
        as_match = AS_DIRECTIVE.search(text)
        rel = as_match.group(1) if as_match else rel_of(path)
        expected = set(EXPECT_DIRECTIVE.findall(text))
        findings = lint_file(path, rel, libclang)
        fired = {f.rule.rule_id for f in findings}
        if fired == expected:
            want = ", ".join(sorted(expected)) or "clean"
            print(f"PASS: {path.name} (as {rel}): {want}")
        else:
            failures += 1
            print(f"FAIL: {path.name} (as {rel}): expected "
                  f"{sorted(expected)}, fired {sorted(fired)}")
            print_findings(findings)
    if failures:
        print(f"detlint self-test FAILED: {failures} fixture(s)")
        return 1
    print(f"detlint self-test OK: {len(fixtures)} fixture(s)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="determinism lint for docs/determinism.md")
    parser.add_argument("roots", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule -> determinism.md table")
    parser.add_argument("--self-test", action="store_true",
                        help="run the negative-fixture suite")
    parser.add_argument("--fixtures", default=str(REPO / "tests" /
                                                  "lint_fixtures"),
                        help="fixture directory for --self-test")
    opts = parser.parse_args()

    if opts.list_rules:
        print_rules()
        return 0

    libclang = _load_libclang()
    mode = "libclang" if libclang else "token-fallback"

    if opts.self_test:
        return self_test(opts.fixtures, libclang)

    files = collect_sources(opts.roots)
    findings = []
    for path in files:
        findings.extend(lint_file(path, rel_of(path), libclang))
    print_findings(findings)
    if findings:
        print(f"detlint FAILED ({mode}): {len(findings)} finding(s) in "
              f"{len(files)} file(s)")
        return 1
    print(f"detlint OK ({mode}): {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
